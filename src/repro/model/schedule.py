"""Full-horizon schedules as per-interval work assignments.

Because the set of available jobs is constant inside an atomic interval
and the per-interval scheduler (Chen et al.) is deterministic, a schedule
is fully described by

* an atomic :class:`~repro.model.intervals.Grid`,
* an ``(n, N)`` matrix of per-job per-interval *loads* (units of work), and
* a boolean vector saying which jobs the scheduler claims to finish.

The cost of Equation (1) — energy plus lost value — and the explicit
``(job, processor, start, end, speed)`` realization both derive from this
triple. All algorithms in the library (PD, OA, YDS, the offline solvers)
return their results as a :class:`Schedule`, which makes cross-validation
and rendering uniform.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from typing import TYPE_CHECKING

from ..errors import GridMismatchError, InfeasibleScheduleError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chen.scheduler import IntervalSchedule
from ..types import BoolArray, FloatArray
from .intervals import Grid
from .job import Instance

__all__ = ["Schedule", "CostBreakdown"]

#: Work-accounting slack: a job counts as finished when it gets at least
#: ``(1 - _REL_TOL)`` of its workload.
_REL_TOL = 1e-9
_LOAD_EPS = 1e-12


@dataclass(frozen=True)
class CostBreakdown:
    """Cost of a schedule split into its two components (Equation (1))."""

    energy: float
    lost_value: float

    @property
    def total(self) -> float:
        return self.energy + self.lost_value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"cost {self.total:.6g} = energy {self.energy:.6g} "
            f"+ lost value {self.lost_value:.6g}"
        )


@dataclass(frozen=True)
class Schedule:
    """An immutable full-horizon schedule.

    Attributes
    ----------
    instance:
        The problem instance this schedule serves.
    grid:
        Atomic-interval partition; every job window must be aligned to it.
    loads:
        ``(n, N)`` array; ``loads[j, k]`` is the workload of job ``j``
        processed during interval ``k`` (``x_{jk} * w_j`` in paper
        notation).
    finished:
        ``(n,)`` boolean; the scheduler's claim of which jobs finish. The
        claim is cross-checked against the loads by :meth:`validate`.
    """

    instance: Instance
    grid: Grid
    loads: FloatArray
    finished: BoolArray

    def __post_init__(self) -> None:
        loads = np.ascontiguousarray(self.loads, dtype=np.float64)
        finished = np.ascontiguousarray(self.finished, dtype=bool)
        n, cols = loads.shape if loads.ndim == 2 else (-1, -1)
        if n != self.instance.n or cols != self.grid.size:
            raise GridMismatchError(
                f"loads shape {loads.shape} does not match n={self.instance.n}, "
                f"N={self.grid.size}"
            )
        if finished.shape != (self.instance.n,):
            raise GridMismatchError(
                f"finished shape {finished.shape} does not match n={self.instance.n}"
            )
        object.__setattr__(self, "loads", loads)
        object.__setattr__(self, "finished", finished)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_portions(
        cls, instance: Instance, grid: Grid, portions: FloatArray, finished: BoolArray
    ) -> "Schedule":
        """Build from paper-style portions ``x_{jk}`` (fractions of workload)."""
        x = np.ascontiguousarray(portions, dtype=np.float64)
        loads = x * instance.workloads[:, None]
        return cls(instance=instance, grid=grid, loads=loads, finished=finished)

    @classmethod
    def empty(cls, instance: Instance, grid: Grid) -> "Schedule":
        """The all-rejecting schedule (zero energy, full value loss)."""
        return cls(
            instance=instance,
            grid=grid,
            loads=np.zeros((instance.n, grid.size)),
            finished=np.zeros(instance.n, dtype=bool),
        )

    # ------------------------------------------------------------------
    # Cost (Equation (1))
    # ------------------------------------------------------------------
    @cached_property
    def energy(self) -> float:
        """Total energy: sum of per-interval ``P_k`` values.

        Evaluated by the batched all-columns kernel
        (:func:`repro.perf.energy.schedule_energy`), bit-identical to
        the historical per-column loop — which is retained as
        :func:`repro.perf.reference.schedule_energy_reference` and
        differentially tested against this path.
        """
        from ..perf.energy import schedule_energy  # lazy: layering

        return schedule_energy(
            self.loads,
            self.grid.lengths,
            self.instance.m,
            self.instance.power,
        )

    @cached_property
    def lost_value(self) -> float:
        """Sum of values of jobs not finished."""
        return float(self.instance.values[~self.finished].sum())

    @property
    def cost(self) -> float:
        """Energy plus lost value."""
        return self.energy + self.lost_value

    def cost_breakdown(self) -> CostBreakdown:
        return CostBreakdown(energy=self.energy, lost_value=self.lost_value)

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------
    def work_done(self) -> FloatArray:
        """Per-job total processed work across all intervals."""
        return self.loads.sum(axis=1)

    def portions(self) -> FloatArray:
        """Paper-style ``x_{jk}`` matrix (loads divided by workloads)."""
        return self.loads / self.instance.workloads[:, None]

    def completion_fractions(self) -> FloatArray:
        """Per-job fraction of workload processed, in [0, 1+eps]."""
        return self.work_done() / self.instance.workloads

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, *, strict_finish: bool = True) -> None:
        """Check model constraints; raise :class:`InfeasibleScheduleError`.

        Verifies: non-negative loads; work only inside availability
        windows; per-interval feasibility (total load fits ``m``
        processors, the largest load fits one processor); and — when
        ``strict_finish`` — that every job claimed finished received its
        full workload.
        """
        if float(self.loads.min(initial=0.0)) < -_LOAD_EPS:
            raise InfeasibleScheduleError("negative load in schedule")

        avail = self.grid.availability_matrix(self.instance)
        stray = np.abs(self.loads[~avail]).sum() if (~avail).any() else 0.0
        if stray > _LOAD_EPS * max(1.0, float(np.abs(self.loads).sum())):
            raise InfeasibleScheduleError(
                "schedule assigns work outside a job's release-deadline window"
            )

        # Speeds are unbounded in the model, so any finite load vector is
        # schedulable; structural constraints (one job per processor, no
        # self-parallelism) are enforced by realization. Guard NaN/inf.
        if not np.all(np.isfinite(self.loads)):
            raise InfeasibleScheduleError("non-finite load in schedule")

        if strict_finish:
            done = self.work_done()
            w = self.instance.workloads
            under = self.finished & (done < w * (1.0 - _REL_TOL) - _LOAD_EPS)
            if under.any():
                j = int(np.nonzero(under)[0][0])
                raise InfeasibleScheduleError(
                    f"job {j} is claimed finished but received only "
                    f"{done[j]:.12g} of {w[j]:.12g} work"
                )

    # ------------------------------------------------------------------
    # Realization
    # ------------------------------------------------------------------
    def realize(self) -> "list[IntervalSchedule]":
        """Explicit per-interval schedules (Chen et al. + McNaughton)."""
        from ..chen.scheduler import schedule_interval  # lazy: layering

        out: list[IntervalSchedule] = []
        for k in range(self.grid.size):
            a, b = self.grid.interval(k)
            col = self.loads[:, k]
            active = np.nonzero(col > _LOAD_EPS)[0]
            out.append(
                schedule_interval(
                    col[active],
                    job_ids=[int(j) for j in active],
                    m=self.instance.m,
                    start=a,
                    end=b,
                    power=self.instance.power,
                )
            )
        return out

    def processor_speed_matrix(self) -> FloatArray:
        """``(m, N)`` speeds of the i-th *fastest* processor per interval.

        Row ``i`` is the speed of the (i+1)-th fastest processor — the
        quantity ``s(i, k)`` in Proposition 7 of the paper. Computed from
        the dedicated/pool structure without materializing segments.
        """
        from ..chen.partition import partition_loads  # local: avoid cycle

        m = self.instance.m
        out = np.zeros((m, self.grid.size), dtype=np.float64)
        lengths = self.grid.lengths
        for k in range(self.grid.size):
            col = self.loads[:, k]
            part = partition_loads(col, m)
            out[:, k] = part.processor_loads() / float(lengths[k])
        return out

    # ------------------------------------------------------------------
    # Rebasing
    # ------------------------------------------------------------------
    def on_grid(self, target: Grid) -> "Schedule":
        """Re-express this schedule on a refinement of its grid.

        Loads split proportionally to sub-interval lengths, which leaves
        speeds, energy, and cost unchanged (the paper's Section 3
        observation). The target must contain every current boundary.
        """
        refinement = self.grid.refine(target.boundaries.tolist())
        if not refinement.grid.same_as(target):
            raise GridMismatchError(
                "target grid is not a refinement of the schedule's grid"
            )
        new_loads = np.stack(
            [refinement.split_row(self.loads[j]) for j in range(self.instance.n)]
        )
        return Schedule(
            instance=self.instance,
            grid=refinement.grid,
            loads=new_loads,
            finished=self.finished,
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Multi-line human-readable cost and acceptance summary."""
        acc = int(self.finished.sum())
        lines = [
            f"Schedule on {self.instance.m} processor(s), alpha={self.instance.alpha}",
            f"  accepted {acc}/{self.instance.n} jobs",
            f"  {self.cost_breakdown()}",
        ]
        return "\n".join(lines)
