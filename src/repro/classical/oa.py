"""Optimal Available (OA) — the classical online speed-scaling algorithm.

OA (Yao, Demers, Shenker 1995) maintains, at every moment, the schedule
that would be optimal if no further jobs arrived: whenever a job arrives,
it recomputes the YDS-optimal plan for all *remaining* work (released
jobs' unfinished portions, usable from "now" on) and follows that plan
until the next arrival. Bansal, Kimbrel & Pruhs proved OA is exactly
``alpha**alpha``-competitive — the same constant the paper's PD achieves
*including* job values and multiple processors.

Besides the classic single-processor :func:`run_oa`, the module provides
:func:`oa_plan`, the one-shot planning step (also the building block of
the Chan–Lam–Li profitable scheduler), and a multiprocessor variant
:func:`run_oa_multiprocessor` that substitutes our convex solver for the
Albers–Antoniadis–Greiner exact offline algorithm (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from ..model.job import Instance, Job
from ..model.schedule import Schedule
from .execution import schedule_from_segments
from .timeline import IntervalSet, edf_execute
from .yds import YdsResult, _critical_window, yds

__all__ = ["OAResult", "oa_plan", "oa_segments", "run_oa", "run_oa_multiprocessor"]

_EPS = 1e-12
_WORK_TOL = 1e-9


@dataclass(frozen=True)
class OAResult:
    """An OA run: the realized schedule plus the executed segments."""

    schedule: Schedule
    segments: tuple[tuple[int, float, float, float], ...]

    @property
    def energy(self) -> float:
        return self.schedule.energy

    @property
    def cost(self) -> float:
        return self.schedule.cost


def oa_plan(
    *,
    now: float,
    job_ids: list[int],
    remaining: dict[int, float],
    deadlines: dict[int, float],
    alpha: float,
) -> YdsResult:
    """The plan OA commits to at time ``now``: YDS on the remaining work.

    Jobs are re-released at ``now`` (their original releases are in the
    past) and keep their deadlines; values are irrelevant at this layer.
    """
    alive = [
        j
        for j in job_ids
        if remaining.get(j, 0.0) > _WORK_TOL and deadlines[j] > now + _EPS
    ]
    if not alive:
        raise InvalidParameterError("oa_plan called with no remaining work")
    sub = Instance(
        tuple(
            Job(
                release=now,
                deadline=deadlines[j],
                workload=remaining[j],
                value=1.0,
                name=f"plan-{j}",
            )
            for j in alive
        ),
        m=1,
        alpha=alpha,
    )
    result = yds(sub)
    # Re-key the plan's internal ids (positions in `sub`) to caller ids.
    remap = {i: alive[i] for i in range(len(alive))}
    segments = tuple(
        (remap[j], a, b, s) for (j, a, b, s) in result.segments
    )
    speeds = np.zeros(max(job_ids) + 1)
    for i, j in remap.items():
        speeds[j] = result.job_speeds[i]
    return YdsResult(
        schedule=result.schedule,
        job_speeds=speeds,
        groups=result.groups,
        segments=segments,
    )


class _PlanJob:
    """A plan-instance job for the critical-window scan: 3 plain floats."""

    __slots__ = ("release", "deadline", "workload")

    def __init__(self, release: float, deadline: float, workload: float) -> None:
        self.release = release
        self.deadline = deadline
        self.workload = workload


class _PlanView:
    """Indexable shim standing in for a sub-``Instance`` in YDS scans.

    :func:`repro.classical.yds._critical_window` only reads
    ``instance[j].release/.deadline/.workload`` — this view serves the
    exact floats a materialized sub-instance's ``Job`` objects would
    hold, without constructing any of them.
    """

    __slots__ = ("_jobs",)

    def __init__(self, jobs: list[_PlanJob]) -> None:
        self._jobs = jobs

    def __getitem__(self, j: int) -> _PlanJob:
        return self._jobs[j]


def _execute_plan_prefix(
    *,
    now: float,
    t_next: float,
    alive: list[int],
    remaining: dict[int, float],
    deadlines: dict[int, float],
    executed: list[tuple[int, float, float, float]],
    unfinished,  # anything with .discard(job): a set or an epoch proxy
    alive_pool,
) -> None:
    """Lazily plan-and-execute one OA epoch: only the prefix before ``t_next``.

    The full replan (``oa_plan`` + segment walk) computes the *entire*
    YDS plan for the remaining work and then discards everything after
    the next arrival. But every plan job shares release ``now``, so the
    YDS rounds have a special structure: each round's critical window is
    ``[now, b_i]`` with ``b_1 < b_2 < ...`` (only windows anchored at the
    common release contain jobs), the frozen set stays one contiguous
    block ``[now, b_i]``, and round ``i``'s EDF segments all live inside
    ``[b_{i-1}, b_i]``. Each round depends only on the rounds before it —
    so the group sequence can be generated lazily and cut off at the
    first round whose window ends at or past ``t_next``: every segment
    the reference would still produce starts at or after that boundary
    and is dropped by its own ``a >= t_next - _EPS`` break. The rounds
    that *are* generated run through the same ``_critical_window`` /
    ``IntervalSet`` / ``edf_execute`` code on the same floats, so the
    executed prefix is bitwise the reference's (asserted by the parity
    suite on every differential case).

    Sub-job ids are positions in ``alive`` (ascending caller ids) — the
    same monotone relabeling ``oa_plan`` applies, so every id-based
    tie-break inside the scan and the EDF heap orders identically.
    """
    view = _PlanView(
        [_PlanJob(now, deadlines[j], remaining[j]) for j in alive]
    )
    rem_sub = set(range(len(alive)))
    frozen = IntervalSet.empty()
    while rem_sub:
        events = sorted(
            {view[j].release for j in rem_sub}
            | {view[j].deadline for j in rem_sub}
        )
        g, a, b, inside = _critical_window(view, rem_sub, events, frozen)
        region = IntervalSet.span(a, b).subtract(frozen)
        job_ids = tuple(sorted(inside))
        frozen = frozen.union(region)
        rem_sub -= set(inside)
        segs = edf_execute(
            job_ids=list(job_ids),
            releases=[view[j].release for j in job_ids],
            deadlines=[view[j].deadline for j in job_ids],
            workloads=[view[j].workload for j in job_ids],
            region=region,
            speed=g,
        )
        for j_sub, sa, sb, speed in segs:
            if sa >= t_next - _EPS:
                return
            hi = min(sb, t_next)
            if hi <= sa + _EPS:
                continue
            job = alive[j_sub]
            executed.append((job, sa, hi, speed))
            remaining[job] -= (hi - sa) * speed
            if remaining[job] < 0.0:
                remaining[job] = 0.0
            if remaining[job] <= _WORK_TOL:
                unfinished.discard(job)
                alive_pool.discard(job)
        if b >= t_next - _EPS:
            # Every later round's segments start at or after this
            # window's end — the reference drops them all.
            return


class _CountingDiscard:
    """``unfinished``-set stand-in for the epoch loop: a guarded counter.

    ``_execute_plan_prefix`` only ever calls ``discard`` — the epoch
    loop replaces the set with a per-job flag plus a live count, so the
    "any work left" test is one integer read. The flag guards against
    the double-discard a multi-segment finish can produce.
    """

    __slots__ = ("flags", "holder")

    def __init__(self, flags: bytearray, holder: list[int]) -> None:
        self.flags = flags
        self.holder = holder

    def discard(self, j: int) -> None:
        if not self.flags[j]:
            self.flags[j] = 1
            self.holder[0] -= 1


class _LazyDiscard:
    """``alive_pool`` stand-in: deletions buffered into a tombstone set."""

    __slots__ = ("dead",)

    def __init__(self, dead: set) -> None:
        self.dead = dead

    def discard(self, j: int) -> None:
        self.dead.add(j)


def _oa_segments_epoch(
    ordered: Instance,
) -> tuple[Instance, list[tuple[int, float, float, float]]]:
    """Epoch-batched bookkeeping around the lazy-prefix OA planner.

    The same treatment the PD main loop gets in ``repro.perf.epochs``,
    applied to OA's replanning loop: the per-epoch Python bookkeeping is
    precomputed in batched numpy passes, while every plan round still
    runs through the untouched :func:`_execute_plan_prefix` on identical
    ``alive`` lists — so the executed segments are bitwise the
    per-arrival path's.

    * the epoch list comes from one ``np.unique`` (the same floats as
      ``sorted(set(...))`` over the release column);
    * the known-prefix advance — a per-epoch ``while`` in the arrival
      path — collapses to one vectorized ``searchsorted`` of every
      ``t + _EPS`` against the release column;
    * the per-epoch ``sorted(alive_pool)`` rebuild is replaced by an
      append-only ascending id list with tombstone deletions (ids enter
      in release order, so the list never needs sorting), compacted when
      more than half its entries are dead;
    * the ``unfinished`` set becomes a flag-guarded counter, making the
      "any work left" test O(1) without set churn.
    """
    n = ordered.n
    releases = ordered.releases
    deadlines_arr = ordered.deadlines
    workloads = ordered.workloads
    epochs_arr = np.unique(releases)
    horizon_end = float(deadlines_arr.max()) if n else 0.0
    # Batched known-prefix counts: the arrival loop advances through
    # `releases[known] <= t + _EPS`; side="right" at t + _EPS is that
    # exact boundary, for every epoch in one pass.
    counts = np.searchsorted(releases, epochs_arr + _EPS, side="right").tolist()
    epochs = epochs_arr.tolist()

    remaining = dict(enumerate(workloads.tolist()))
    deadlines = dict(enumerate(deadlines_arr.tolist()))
    addable = (workloads > _WORK_TOL).tolist()
    executed: list[tuple[int, float, float, float]] = []

    alive_list: list[int] = []
    dead: set[int] = set()
    finished_flag = bytearray(n)
    unfinished_count = [0]
    unfinished_proxy = _CountingDiscard(finished_flag, unfinished_count)
    pool_proxy = _LazyDiscard(dead)
    known = 0

    for idx, t in enumerate(epochs):
        t_next = epochs[idx + 1] if idx + 1 < len(epochs) else horizon_end
        kc = counts[idx]
        while known < kc:
            if addable[known]:
                alive_list.append(known)
                unfinished_count[0] += 1
            known += 1
        if not unfinished_count[0]:
            continue
        if len(dead) > len(alive_list) // 2:
            alive_list = [j for j in alive_list if j not in dead]
            dead.clear()
        alive = []
        for j in alive_list:
            if j in dead:
                continue
            if deadlines[j] > t + _EPS:
                alive.append(j)
            else:
                # A passed deadline never un-passes: tombstone for good.
                dead.add(j)
        if not alive:
            # Work remains but nothing is plannable — the exact state in
            # which the reference path's oa_plan raises.
            raise InvalidParameterError("oa_plan called with no remaining work")
        _execute_plan_prefix(
            now=t,
            t_next=t_next,
            alive=alive,
            remaining=remaining,
            deadlines=deadlines,
            executed=executed,
            unfinished=unfinished_proxy,
            alive_pool=pool_proxy,
        )

    return ordered, executed


def oa_segments(
    instance: Instance, *, replan: str = "incremental", batch: str | None = None
) -> tuple[Instance, list[tuple[int, float, float, float]]]:
    """Simulate OA and return ``(ordered_instance, executed_segments)``.

    The segment-level core of :func:`run_oa`, exposed separately so
    large-scale callers (the bench harness) can consume the executed
    trajectory without materializing the dense schedule matrix.

    ``replan="incremental"`` (default) generates each epoch's YDS plan
    lazily and stops at the first critical interval past the next
    arrival; ``replan="reference"`` is the historical from-scratch
    replan (full YDS plan per epoch, via :func:`oa_plan`), retained for
    differential testing. ``batch="epoch"`` additionally batches the
    per-epoch bookkeeping (see :func:`_oa_segments_epoch`); ``None``
    defers to the ambient :func:`repro.perf.epochs.batch_mode`.
    Identical output — bit for bit — across every combination.
    """
    if instance.m != 1:
        raise InvalidParameterError(
            f"run_oa is single-processor; instance has m={instance.m}. "
            "Use run_oa_multiprocessor for m > 1."
        )
    if replan not in ("incremental", "reference"):
        raise InvalidParameterError(
            f"replan must be 'incremental' or 'reference', got {replan!r}"
        )
    if batch is None:
        from ..perf.epochs import current_batch_mode  # lazy: higher layer

        batch = current_batch_mode()
    if batch not in ("arrival", "epoch"):
        raise InvalidParameterError(
            f"batch must be 'arrival' or 'epoch', got {batch!r}"
        )
    if batch == "epoch":
        if replan == "reference":
            raise InvalidParameterError(
                "batch='epoch' applies to the incremental replanner; the "
                "reference replan is its per-arrival parity twin "
                "(use batch='arrival')"
            )
        return _oa_segments_epoch(instance.sorted_by_release())
    ordered = instance.sorted_by_release()
    n = ordered.n
    releases = ordered.releases
    epochs = sorted(set(releases.tolist()))
    horizon_end = float(ordered.deadlines.max()) if n else 0.0

    remaining = dict(enumerate(ordered.workloads.tolist()))
    deadlines = dict(enumerate(ordered.deadlines.tolist()))
    executed: list[tuple[int, float, float, float]] = []

    # Releases are sorted, so the known set is a growing prefix, and
    # the "any work left" test is a maintained set of unfinished known
    # jobs — O(1) per epoch instead of an O(n) rescan. `alive_pool`
    # additionally drops jobs whose deadline has passed (dust below the
    # work tolerance), so building an epoch's alive list costs the size
    # of the *actually alive* set, not of all unfinished bookkeeping.
    known_count = 0
    unfinished: set[int] = set()
    alive_pool: set[int] = set()

    for idx, t in enumerate(epochs):
        t_next = epochs[idx + 1] if idx + 1 < len(epochs) else horizon_end
        while known_count < n and releases[known_count] <= t + _EPS:
            if remaining[known_count] > _WORK_TOL:
                unfinished.add(known_count)
                alive_pool.add(known_count)
            known_count += 1
        if not unfinished:
            continue
        if replan == "reference":
            plan = oa_plan(
                now=t,
                job_ids=list(range(known_count)),
                remaining=remaining,
                deadlines=deadlines,
                alpha=ordered.alpha,
            )
            for job, a, b, speed in plan.segments:
                if a >= t_next - _EPS:
                    break
                hi = min(b, t_next)
                if hi <= a + _EPS:
                    continue
                executed.append((job, a, hi, speed))
                remaining[job] -= (hi - a) * speed
                if remaining[job] < 0.0:
                    remaining[job] = 0.0
                if remaining[job] <= _WORK_TOL:
                    unfinished.discard(job)
                    alive_pool.discard(job)
            continue
        alive = []
        for j in sorted(alive_pool):
            if deadlines[j] > t + _EPS:
                alive.append(j)
            else:
                # A passed deadline never un-passes: prune for good.
                alive_pool.discard(j)
        if not alive:
            # Work remains but nothing is plannable — the exact state in
            # which the reference path's oa_plan raises.
            raise InvalidParameterError("oa_plan called with no remaining work")
        _execute_plan_prefix(
            now=t,
            t_next=t_next,
            alive=alive,
            remaining=remaining,
            deadlines=deadlines,
            executed=executed,
            unfinished=unfinished,
            alive_pool=alive_pool,
        )

    return ordered, executed


def run_oa(
    instance: Instance,
    *,
    replan: str = "incremental",
    batch: str | None = None,
) -> OAResult:
    """Simulate OA on a single-processor instance (all jobs are finished).

    Job values are ignored — OA predates the profitable model. The
    simulation advances from arrival epoch to arrival epoch, executing the
    current plan's EDF segments in between. ``replan`` selects between
    the incremental lazy-prefix planner (default) and the retained
    historical from-scratch replan (``"reference"``); ``batch`` selects
    the epoch-batched bookkeeping loop (``None`` defers to the ambient
    :func:`repro.perf.epochs.batch_mode`); see :func:`oa_segments`. The
    results are bit-identical across every combination.
    """
    ordered, executed = oa_segments(instance, replan=replan, batch=batch)
    schedule = schedule_from_segments(
        ordered, executed, np.ones(ordered.n, dtype=bool)
    )
    return OAResult(schedule=schedule, segments=tuple(executed))


def run_oa_multiprocessor(instance: Instance) -> OAResult:
    """OA on ``m`` processors via the numeric convex optimum.

    At each arrival epoch the remaining work is re-optimized with the
    block-coordinate convex solver (our stand-in for the exact
    Albers–Antoniadis–Greiner offline algorithm) and the plan's Chen/
    McNaughton realization is executed until the next arrival. Exact on
    ``m == 1`` up to solver tolerance; used by the multiprocessor
    experiments as the natural OA generalization the paper compares
    against conceptually.
    """
    from ..offline.convex import solve_min_energy  # lazy: higher layer

    ordered = instance.sorted_by_release()
    n = ordered.n
    releases = ordered.releases
    epochs = sorted(set(releases.tolist()))
    horizon_end = max(j.deadline for j in ordered.jobs)

    remaining = {j: ordered[j].workload for j in range(n)}
    executed: list[tuple[int, float, float, float]] = []

    for idx, t in enumerate(epochs):
        t_next = epochs[idx + 1] if idx + 1 < len(epochs) else horizon_end
        alive = [
            j
            for j in range(n)
            if releases[j] <= t + _EPS
            and remaining[j] > _WORK_TOL
            and ordered[j].deadline > t + _EPS
        ]
        if not alive:
            continue
        sub = Instance(
            tuple(
                Job(t, ordered[j].deadline, remaining[j], 1.0) for j in alive
            ),
            m=ordered.m,
            alpha=ordered.alpha,
        )
        plan = solve_min_energy(sub)
        for interval_schedule in plan.schedule.realize():
            for seg in interval_schedule.segments:
                if seg.start >= t_next - _EPS:
                    continue
                hi = min(seg.end, t_next)
                if hi <= seg.start + _EPS:
                    continue
                job = alive[seg.job]
                executed.append((job, seg.start, hi, seg.speed))
                remaining[job] -= (hi - seg.start) * seg.speed
                if remaining[job] < 0.0:
                    remaining[job] = 0.0

    schedule = schedule_from_segments(ordered, executed, np.ones(n, dtype=bool))
    return OAResult(schedule=schedule, segments=tuple(executed))


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402


@register_algorithm(
    "oa",
    online=True,
    multiprocessor=True,
    summary="Optimal Available (alpha^alpha-competitive; m > 1 via dispatch)",
)
def _run_oa_registered(instance):
    result = run_oa(instance) if instance.m == 1 else run_oa_multiprocessor(instance)
    return result.schedule, result
