"""Optimal Available (OA) — the classical online speed-scaling algorithm.

OA (Yao, Demers, Shenker 1995) maintains, at every moment, the schedule
that would be optimal if no further jobs arrived: whenever a job arrives,
it recomputes the YDS-optimal plan for all *remaining* work (released
jobs' unfinished portions, usable from "now" on) and follows that plan
until the next arrival. Bansal, Kimbrel & Pruhs proved OA is exactly
``alpha**alpha``-competitive — the same constant the paper's PD achieves
*including* job values and multiple processors.

Besides the classic single-processor :func:`run_oa`, the module provides
:func:`oa_plan`, the one-shot planning step (also the building block of
the Chan–Lam–Li profitable scheduler), and a multiprocessor variant
:func:`run_oa_multiprocessor` that substitutes our convex solver for the
Albers–Antoniadis–Greiner exact offline algorithm (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from ..model.job import Instance, Job
from ..model.schedule import Schedule
from .execution import schedule_from_segments
from .yds import YdsResult, yds

__all__ = ["OAResult", "oa_plan", "run_oa", "run_oa_multiprocessor"]

_EPS = 1e-12
_WORK_TOL = 1e-9


@dataclass(frozen=True)
class OAResult:
    """An OA run: the realized schedule plus the executed segments."""

    schedule: Schedule
    segments: tuple[tuple[int, float, float, float], ...]

    @property
    def energy(self) -> float:
        return self.schedule.energy

    @property
    def cost(self) -> float:
        return self.schedule.cost


def oa_plan(
    *,
    now: float,
    job_ids: list[int],
    remaining: dict[int, float],
    deadlines: dict[int, float],
    alpha: float,
) -> YdsResult:
    """The plan OA commits to at time ``now``: YDS on the remaining work.

    Jobs are re-released at ``now`` (their original releases are in the
    past) and keep their deadlines; values are irrelevant at this layer.
    """
    alive = [
        j
        for j in job_ids
        if remaining.get(j, 0.0) > _WORK_TOL and deadlines[j] > now + _EPS
    ]
    if not alive:
        raise InvalidParameterError("oa_plan called with no remaining work")
    sub = Instance(
        tuple(
            Job(
                release=now,
                deadline=deadlines[j],
                workload=remaining[j],
                value=1.0,
                name=f"plan-{j}",
            )
            for j in alive
        ),
        m=1,
        alpha=alpha,
    )
    result = yds(sub)
    # Re-key the plan's internal ids (positions in `sub`) to caller ids.
    remap = {i: alive[i] for i in range(len(alive))}
    segments = tuple(
        (remap[j], a, b, s) for (j, a, b, s) in result.segments
    )
    speeds = np.zeros(max(job_ids) + 1)
    for i, j in remap.items():
        speeds[j] = result.job_speeds[i]
    return YdsResult(
        schedule=result.schedule,
        job_speeds=speeds,
        groups=result.groups,
        segments=segments,
    )


def run_oa(instance: Instance) -> OAResult:
    """Simulate OA on a single-processor instance (all jobs are finished).

    Job values are ignored — OA predates the profitable model. The
    simulation advances from arrival epoch to arrival epoch, executing the
    current plan's EDF segments in between.
    """
    if instance.m != 1:
        raise InvalidParameterError(
            f"run_oa is single-processor; instance has m={instance.m}. "
            "Use run_oa_multiprocessor for m > 1."
        )
    ordered = instance.sorted_by_release()
    n = ordered.n
    releases = ordered.releases
    epochs = sorted(set(releases.tolist()))
    horizon_end = max(j.deadline for j in ordered.jobs)

    remaining = {j: ordered[j].workload for j in range(n)}
    deadlines = {j: ordered[j].deadline for j in range(n)}
    executed: list[tuple[int, float, float, float]] = []

    # Releases are sorted, so the known set is a growing prefix, and
    # the "any work left" test is a maintained set of unfinished known
    # jobs — O(1) per epoch instead of an O(n) rescan (the replan itself
    # is the same batched YDS call either way).
    known_count = 0
    unfinished: set[int] = set()

    for idx, t in enumerate(epochs):
        t_next = epochs[idx + 1] if idx + 1 < len(epochs) else horizon_end
        while known_count < n and releases[known_count] <= t + _EPS:
            if remaining[known_count] > _WORK_TOL:
                unfinished.add(known_count)
            known_count += 1
        if not unfinished:
            continue
        plan = oa_plan(
            now=t,
            job_ids=list(range(known_count)),
            remaining=remaining,
            deadlines=deadlines,
            alpha=ordered.alpha,
        )
        for job, a, b, speed in plan.segments:
            if a >= t_next - _EPS:
                break
            hi = min(b, t_next)
            if hi <= a + _EPS:
                continue
            executed.append((job, a, hi, speed))
            remaining[job] -= (hi - a) * speed
            if remaining[job] < 0.0:
                remaining[job] = 0.0
            if remaining[job] <= _WORK_TOL:
                unfinished.discard(job)

    schedule = schedule_from_segments(
        ordered, executed, np.ones(n, dtype=bool)
    )
    return OAResult(schedule=schedule, segments=tuple(executed))


def run_oa_multiprocessor(instance: Instance) -> OAResult:
    """OA on ``m`` processors via the numeric convex optimum.

    At each arrival epoch the remaining work is re-optimized with the
    block-coordinate convex solver (our stand-in for the exact
    Albers–Antoniadis–Greiner offline algorithm) and the plan's Chen/
    McNaughton realization is executed until the next arrival. Exact on
    ``m == 1`` up to solver tolerance; used by the multiprocessor
    experiments as the natural OA generalization the paper compares
    against conceptually.
    """
    from ..offline.convex import solve_min_energy  # lazy: higher layer

    ordered = instance.sorted_by_release()
    n = ordered.n
    releases = ordered.releases
    epochs = sorted(set(releases.tolist()))
    horizon_end = max(j.deadline for j in ordered.jobs)

    remaining = {j: ordered[j].workload for j in range(n)}
    executed: list[tuple[int, float, float, float]] = []

    for idx, t in enumerate(epochs):
        t_next = epochs[idx + 1] if idx + 1 < len(epochs) else horizon_end
        alive = [
            j
            for j in range(n)
            if releases[j] <= t + _EPS
            and remaining[j] > _WORK_TOL
            and ordered[j].deadline > t + _EPS
        ]
        if not alive:
            continue
        sub = Instance(
            tuple(
                Job(t, ordered[j].deadline, remaining[j], 1.0) for j in alive
            ),
            m=ordered.m,
            alpha=ordered.alpha,
        )
        plan = solve_min_energy(sub)
        for interval_schedule in plan.schedule.realize():
            for seg in interval_schedule.segments:
                if seg.start >= t_next - _EPS:
                    continue
                hi = min(seg.end, t_next)
                if hi <= seg.start + _EPS:
                    continue
                job = alive[seg.job]
                executed.append((job, seg.start, hi, seg.speed))
                remaining[job] -= (hi - seg.start) * seg.speed
                if remaining[job] < 0.0:
                    remaining[job] = 0.0

    schedule = schedule_from_segments(ordered, executed, np.ones(n, dtype=bool))
    return OAResult(schedule=schedule, segments=tuple(executed))


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402


@register_algorithm(
    "oa",
    online=True,
    multiprocessor=True,
    summary="Optimal Available (alpha^alpha-competitive; m > 1 via dispatch)",
)
def _run_oa_registered(instance):
    result = run_oa(instance) if instance.m == 1 else run_oa_multiprocessor(instance)
    return result.schedule, result
