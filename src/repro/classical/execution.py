"""Turning time-resolved executions into :class:`Schedule` objects.

Online executors (OA, AVR, BKP, qOA, CLL, multiprocessor OA) naturally
produce chronological ``(job, start, end, speed)`` segments, possibly with
speed changes at times that are not instance event points. To express the
result as a :class:`~repro.model.schedule.Schedule` *without distorting
its energy*, we refine the instance grid with every segment boundary: in
each refined interval every job then runs at one constant speed on one
processor, and the minimal-energy value ``P_k`` of the per-interval loads
coincides with the energy actually spent (at most ``m`` jobs occupy an
interval, in which case Chen's partition dedicates all of them).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import InfeasibleScheduleError
from ..model.intervals import Grid
from ..model.job import Instance
from ..model.schedule import Schedule

__all__ = ["schedule_from_segments"]

_EPS = 1e-12


def schedule_from_segments(
    instance: Instance,
    segments: Sequence[tuple[int, float, float, float]],
    finished: Sequence[bool] | np.ndarray,
) -> Schedule:
    """Build a schedule whose grid is refined by all segment boundaries.

    Parameters
    ----------
    instance:
        The instance the segments serve.
    segments:
        ``(job, start, end, speed)`` executions. Segments of the same job
        must not overlap in time (not checked here — the validator in
        :mod:`repro.model.validation` covers realizations).
    finished:
        The executor's claim of which jobs completed.
    """
    points = set(instance.event_times().tolist())
    for _, start, end, _ in segments:
        points.add(float(start))
        points.add(float(end))
    grid = Grid.from_points(points)

    loads = np.zeros((instance.n, grid.size))
    bounds = grid.boundaries
    for job, start, end, speed in segments:
        if end <= start + _EPS:
            continue
        if not (0 <= job < instance.n):
            raise InfeasibleScheduleError(f"segment for unknown job {job}")
        k0 = grid.locate(start)
        k1 = grid.locate(end - _EPS)
        for k in range(k0, k1 + 1):
            lo = max(start, float(bounds[k]))
            hi = min(end, float(bounds[k + 1]))
            if hi > lo + _EPS:
                loads[job, k] += (hi - lo) * speed

    return Schedule(
        instance=instance,
        grid=grid,
        loads=loads,
        finished=np.ascontiguousarray(finished, dtype=bool),
    )
