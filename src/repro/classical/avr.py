"""Average Rate (AVR) — the density heuristic of Yao, Demers, Shenker.

AVR devotes to every job a constant speed equal to its *density*
``w_j / (d_j - r_j)`` throughout its availability window; the processor
speed at any time is the sum of the densities of the live jobs. AVR is
``(2 alpha)**alpha / 2``-competitive on one processor — simple, online,
and a useful sanity baseline: any reasonable algorithm should beat it on
bursty instances.

The per-interval loads are closed-form (density times overlap), so no
simulation is needed; the multiprocessor variant feeds the same loads to
Chen's realization, which can only lower the energy relative to running
each job at its own density.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from ..model.intervals import grid_for_instance
from ..model.job import Instance
from ..model.schedule import Schedule

__all__ = ["run_avr"]


def run_avr(instance: Instance) -> Schedule:
    """AVR schedule: every job spread uniformly over its window.

    All jobs are finished (values ignored). Works for any ``m``; on a
    single processor the energy matches the textbook AVR definition
    exactly because the total speed within an atomic interval is constant.
    """
    if instance.n == 0:
        raise InvalidParameterError("AVR needs at least one job")
    grid = grid_for_instance(instance)
    loads = np.zeros((instance.n, grid.size))
    for j, job in enumerate(instance.jobs):
        ks = list(grid.covering(job.release, job.deadline))
        lengths = np.array([grid.length(k) for k in ks])
        loads[j, ks] = job.density * lengths
    return Schedule(
        instance=instance,
        grid=grid,
        loads=loads,
        finished=np.ones(instance.n, dtype=bool),
    )


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402


@register_algorithm(
    "avr",
    online=True,
    multiprocessor=True,
    summary="Average Rate: constant density per job",
)
def _run_avr_registered(instance):
    schedule = run_avr(instance)
    return schedule, schedule
