"""Classical speed-scaling algorithms (the lineage PD descends from).

* :func:`yds` — exact offline optimum on one processor (Yao–Demers–
  Shenker); the library's ground-truth oracle.
* :func:`run_oa` / :func:`run_oa_multiprocessor` — Optimal Available,
  ``alpha**alpha``-competitive; the algorithm PD structurally resembles.
* :func:`run_avr` — Average Rate density heuristic.
* :func:`run_bkp` — Bansal–Kimbrel–Pruhs mirror algorithm.
* :func:`run_qoa` — OA sped up by ``q = 2 - 1/alpha``.
* :class:`IntervalSet` / :func:`edf_execute` — shared timeline machinery.
"""

from .avr import run_avr
from .bkp import bkp_speed, run_bkp
from .execution import schedule_from_segments
from .oa import OAResult, oa_plan, run_oa, run_oa_multiprocessor
from .qoa import default_q, run_qoa
from .timeline import IntervalSet, edf_execute
from .yds import YdsResult, yds

__all__ = [
    "yds",
    "YdsResult",
    "run_oa",
    "run_oa_multiprocessor",
    "oa_plan",
    "OAResult",
    "run_avr",
    "run_bkp",
    "bkp_speed",
    "run_qoa",
    "default_q",
    "IntervalSet",
    "edf_execute",
    "schedule_from_segments",
]
