"""qOA — OA sped up by a factor ``q`` (Bansal, Chan, Pruhs, Katz 2009).

qOA runs, at every moment, ``q`` times as fast as Optimal Available would
in the *current state* (i.e., OA's plan is recomputed from qOA's own
remaining work), processing jobs EDF. With ``q = 2 - 1/alpha`` its
competitive ratio is ``4**alpha / (2 * e**(1/2) * alpha**(1/4))``-ish —
the point is that it beats both OA and BKP for the practically relevant
low exponents (``alpha = 2..3``).

Running faster than the plan finishes jobs *early*, so unlike OA the plan
must be refreshed at completion events too. The simulation is event-driven
over arrivals, plan-segment boundaries, and completions.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from ..model.job import Instance
from ..model.schedule import Schedule
from .execution import schedule_from_segments
from .oa import oa_plan

__all__ = ["run_qoa", "default_q"]

_EPS = 1e-12
_WORK_TOL = 1e-9


def default_q(alpha: float) -> float:
    """The speed-up factor ``q = 2 - 1/alpha`` recommended by the authors."""
    return 2.0 - 1.0 / alpha


def run_qoa(instance: Instance, *, q: float | None = None) -> Schedule:
    """Simulate qOA on a single processor (values ignored, all jobs finish)."""
    if instance.m != 1:
        raise InvalidParameterError(
            f"qOA is a single-processor algorithm; instance has m={instance.m}"
        )
    ordered = instance.sorted_by_release()
    q = default_q(ordered.alpha) if q is None else float(q)
    if q < 1.0:
        raise InvalidParameterError(f"q must be >= 1 (got {q}); slower than OA is infeasible")

    n = ordered.n
    releases = ordered.releases
    deadlines = {j: ordered[j].deadline for j in range(n)}
    remaining = {j: ordered[j].workload for j in range(n)}
    arrivals = sorted(set(releases.tolist()))
    horizon_end = max(deadlines.values())
    executed: list[tuple[int, float, float, float]] = []

    t = arrivals[0]
    arrival_idx = 0
    while t < horizon_end - _EPS:
        # Admit arrivals at time t.
        while arrival_idx < len(arrivals) and arrivals[arrival_idx] <= t + _EPS:
            arrival_idx += 1
        next_arrival = (
            arrivals[arrival_idx] if arrival_idx < len(arrivals) else horizon_end
        )
        known = [j for j in range(n) if releases[j] <= t + _EPS]
        alive = [
            j for j in known if remaining[j] > _WORK_TOL and deadlines[j] > t + _EPS
        ]
        if not alive:
            if next_arrival <= t + _EPS:
                break
            t = next_arrival
            continue

        plan = oa_plan(
            now=t,
            job_ids=known,
            remaining=remaining,
            deadlines=deadlines,
            alpha=ordered.alpha,
        )
        # Execute at q x plan speed, EDF, until the next structural event.
        plan_boundaries = sorted(
            {seg_a for (_, seg_a, _, _) in plan.segments}
            | {seg_b for (_, _, seg_b, _) in plan.segments}
        )
        plan_speed_at = _plan_speed_lookup(plan.segments)

        speed = q * plan_speed_at(t)
        if speed <= _EPS:
            t = next_arrival
            continue
        j = min(alive, key=lambda i: (deadlines[i], i))
        completion = t + remaining[j] / speed
        next_boundary = next(
            (b for b in plan_boundaries if b > t + _EPS), horizon_end
        )
        t_next = min(next_arrival, completion, next_boundary, horizon_end)
        if t_next <= t + _EPS:
            t = t + _EPS  # numerical nudge; cannot stall forever
            continue
        executed.append((j, t, t_next, speed))
        remaining[j] -= (t_next - t) * speed
        if remaining[j] < _WORK_TOL:
            remaining[j] = 0.0
        t = t_next

    finished = np.array([remaining[j] <= _WORK_TOL * 10 + 1e-6 for j in range(n)])
    return schedule_from_segments(ordered, executed, finished)


def _plan_speed_lookup(segments):
    """Closure returning the plan's speed at a given time (0 when idle)."""

    def speed_at(t: float) -> float:
        for _, a, b, s in segments:
            if a - _EPS <= t < b - _EPS:
                return s
        return 0.0

    return speed_at


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402


@register_algorithm(
    "qoa",
    online=True,
    multiprocessor=False,
    summary="OA sped up by q = 2 - 1/alpha (single processor)",
)
def _run_qoa_registered(instance):
    schedule = run_qoa(instance)
    return schedule, schedule
