"""Disjoint-interval time sets and EDF execution inside them.

Two pieces of machinery shared by the classical algorithms:

* :class:`IntervalSet` — an immutable union of disjoint half-open
  intervals with measure, union, subtraction, and window-restricted
  measure. YDS freezes critical regions as interval sets; OA executes
  plans over them.
* :func:`edf_execute` — run a set of jobs earliest-deadline-first at a
  constant speed inside an interval set, producing time-resolved
  ``(job, start, end, speed)`` segments. Used to realize YDS critical
  groups and to drive online executors.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import InfeasibleScheduleError, InvalidParameterError

__all__ = ["IntervalSet", "edf_execute"]

_EPS = 1e-12


@dataclass(frozen=True)
class IntervalSet:
    """An immutable union of disjoint, sorted, half-open intervals."""

    parts: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        prev_end = -float("inf")
        for a, b in self.parts:
            if b <= a + _EPS:
                raise InvalidParameterError(f"degenerate interval [{a}, {b})")
            if a < prev_end - _EPS:
                raise InvalidParameterError("interval parts must be disjoint and sorted")
            prev_end = b

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls(parts=())

    @classmethod
    def span(cls, a: float, b: float) -> "IntervalSet":
        return cls(parts=((float(a), float(b)),))

    @classmethod
    def from_parts(cls, parts: Iterable[tuple[float, float]]) -> "IntervalSet":
        """Normalize arbitrary (possibly touching) parts into canonical form."""
        merged: list[list[float]] = []
        for a, b in sorted((float(a), float(b)) for a, b in parts):
            if b <= a + _EPS:
                continue
            if merged and a <= merged[-1][1] + _EPS:
                merged[-1][1] = max(merged[-1][1], b)
            else:
                merged.append([a, b])
        return cls(parts=tuple((a, b) for a, b in merged))

    # ------------------------------------------------------------------
    # Measure / queries
    # ------------------------------------------------------------------
    @property
    def measure(self) -> float:
        return sum(b - a for a, b in self.parts)

    @property
    def is_empty(self) -> bool:
        return not self.parts

    def measure_within(self, lo: float, hi: float) -> float:
        """Length of the intersection with ``[lo, hi)``."""
        total = 0.0
        for a, b in self.parts:
            total += max(0.0, min(b, hi) - max(a, lo))
        return total

    def contains(self, t: float) -> bool:
        return any(a - _EPS <= t < b for a, b in self.parts)

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet.from_parts(list(self.parts) + list(other.parts))

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        """This set minus ``other``."""
        result: list[tuple[float, float]] = []
        for a, b in self.parts:
            pieces = [(a, b)]
            for c, d in other.parts:
                next_pieces: list[tuple[float, float]] = []
                for x, y in pieces:
                    if d <= x + _EPS or c >= y - _EPS:
                        next_pieces.append((x, y))
                        continue
                    if c > x + _EPS:
                        next_pieces.append((x, c))
                    if d < y - _EPS:
                        next_pieces.append((d, y))
                pieces = next_pieces
            result.extend(pieces)
        return IntervalSet.from_parts(result)

    def intersect_window(self, lo: float, hi: float) -> "IntervalSet":
        return IntervalSet.from_parts(
            (max(a, lo), min(b, hi)) for a, b in self.parts if min(b, hi) > max(a, lo)
        )


def edf_execute(
    *,
    job_ids: Sequence[int],
    releases: Sequence[float],
    deadlines: Sequence[float],
    workloads: Sequence[float],
    region: IntervalSet,
    speed: float,
    work_tol: float = 1e-9,
) -> list[tuple[int, float, float, float]]:
    """Run jobs EDF at constant ``speed`` inside ``region``.

    The sweep subdivides the region at release times, then repeatedly runs
    the released, unfinished job with the earliest deadline. Segments are
    emitted whenever the running job changes. Feasibility (every job done
    by its deadline) is *checked*, not assumed: an
    :class:`InfeasibleScheduleError` means the caller's speed was too low,
    which for YDS critical groups would indicate a bug upstream.
    """
    if speed <= 0.0:
        raise InvalidParameterError(f"speed must be > 0, got {speed}")
    n = len(job_ids)
    if not (n == len(releases) == len(deadlines) == len(workloads)):
        raise InvalidParameterError("job attribute sequences must align")

    remaining = {job_ids[i]: float(workloads[i]) for i in range(n)}
    rel = {job_ids[i]: float(releases[i]) for i in range(n)}
    dl = {job_ids[i]: float(deadlines[i]) for i in range(n)}

    # Subdivide region parts at release times so availability only changes
    # at piece boundaries.
    cut_points = sorted({r for r in rel.values()})
    pieces: list[tuple[float, float]] = []
    for a, b in region.parts:
        cuts = [a] + [t for t in cut_points if a < t < b] + [b]
        pieces.extend((cuts[i], cuts[i + 1]) for i in range(len(cuts) - 1))

    # EDF selection through a lazy-deletion heap keyed (deadline, id) —
    # the same minimum the historical O(n) ready-rescan computed each
    # step. Every release inside a region part is a piece boundary, so
    # jobs become ready only at piece starts; the release pointer walks
    # the release-sorted job list once.
    by_release = sorted(range(n), key=lambda i: (rel[job_ids[i]], job_ids[i]))
    release_ptr = 0
    heap: list[tuple[float, int]] = []

    segments: list[tuple[int, float, float, float]] = []
    for a, b in pieces:
        t = a
        while release_ptr < n:
            j = job_ids[by_release[release_ptr]]
            if rel[j] > t + _EPS:
                break
            if remaining[j] > work_tol:
                heapq.heappush(heap, (dl[j], j))
            release_ptr += 1
        while t < b - _EPS:
            while heap and remaining[heap[0][1]] <= work_tol:
                heapq.heappop(heap)
            if not heap:
                break
            j = heap[0][1]
            finish_in = remaining[j] / speed
            run_until = min(b, t + finish_in)
            if run_until <= t + _EPS:
                remaining[j] = 0.0
                continue
            segments.append((j, t, run_until, speed))
            remaining[j] -= (run_until - t) * speed
            if remaining[j] <= work_tol:
                remaining[j] = 0.0
            t = run_until

    unfinished = {j: w for j, w in remaining.items() if w > max(work_tol, 1e-6 * speed)}
    if unfinished:
        raise InfeasibleScheduleError(
            f"EDF at speed {speed} left work unfinished: {unfinished}"
        )
    # Deadline check: every segment of a job must end by its deadline.
    for j, a, b, _ in segments:
        if b > dl[j] + 1e-7:
            raise InfeasibleScheduleError(
                f"EDF ran job {j} past its deadline {dl[j]} (until {b})"
            )
    return _merge_adjacent(segments)


def _merge_adjacent(
    segments: list[tuple[int, float, float, float]]
) -> list[tuple[int, float, float, float]]:
    """Merge back-to-back segments of the same job at the same speed."""
    segments = sorted(segments, key=lambda s: (s[1], s[0]))
    out: list[tuple[int, float, float, float]] = []
    for seg in segments:
        if (
            out
            and out[-1][0] == seg[0]
            and abs(out[-1][2] - seg[1]) <= _EPS
            and abs(out[-1][3] - seg[3]) <= _EPS
        ):
            out[-1] = (seg[0], out[-1][1], seg[2], seg[3])
        else:
            out.append(seg)
    return out
