"""BKP — the online algorithm of Bansal, Kimbrel & Pruhs (FOCS 2004).

BKP bounds the future by mirroring: at time ``t`` it considers, for every
horizon ``t' > t``, the work ``w(t, t1, t')`` of jobs already *arrived*
whose windows fit inside ``[t1, t']`` with ``t1 = e*t - (e-1)*t'``, and
runs EDF at speed

    ``s(t) = e * max_{t' > t} w(t, e*t - (e-1)*t', t') / (e * (t' - t))``.

Its competitive ratio is ``2 * (alpha / (alpha - 1))**alpha * e**alpha``
— asymptotically better than OA's ``alpha**alpha`` for large ``alpha``.

BKP's speed varies *continuously* in ``t`` (not only at events), so an
exact event-driven simulation is impossible with piecewise-constant
machinery. We discretize: each atomic interval is split into
``samples_per_interval`` equal slices, the speed is evaluated at each
slice's start and held constant over the slice, and jobs are processed
EDF. A final safety pass bumps the speed of any slice where discretization
would make a deadline slip (the bump vanishes as the sampling is refined;
tests verify first-order convergence of the energy).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import InvalidParameterError
from ..model.job import Instance
from ..model.schedule import Schedule
from .execution import schedule_from_segments

__all__ = ["run_bkp", "bkp_speed"]

_EPS = 1e-12
_WORK_TOL = 1e-9


def bkp_speed(instance: Instance, t: float) -> float:
    """The BKP speed formula at time ``t`` (arrived jobs only)."""
    e = math.e
    candidates = sorted(
        {job.deadline for job in instance.jobs if job.deadline > t + _EPS}
    )
    best = 0.0
    for t2 in candidates:
        t1 = e * t - (e - 1.0) * t2
        w = sum(
            job.workload
            for job in instance.jobs
            if job.release <= t + _EPS
            and job.release >= t1 - _EPS
            and job.deadline <= t2 + _EPS
        )
        if w > 0.0:
            best = max(best, w / (e * (t2 - t)))
    return e * best


def run_bkp(instance: Instance, *, samples_per_interval: int = 32) -> Schedule:
    """Simulate BKP on a single processor (values ignored, all jobs finish).

    ``samples_per_interval`` controls the discretization of the
    continuously varying speed; 32 keeps the energy within a fraction of a
    percent of the continuous algorithm on the test families.
    """
    if instance.m != 1:
        raise InvalidParameterError(
            f"BKP is a single-processor algorithm; instance has m={instance.m}"
        )
    if samples_per_interval < 1:
        raise InvalidParameterError("samples_per_interval must be >= 1")
    ordered = instance.sorted_by_release()
    events = ordered.event_times()
    remaining = {j: ordered[j].workload for j in range(ordered.n)}
    executed: list[tuple[int, float, float, float]] = []

    for k in range(events.size - 1):
        a, b = float(events[k]), float(events[k + 1])
        step = (b - a) / samples_per_interval
        for i in range(samples_per_interval):
            t0 = a + i * step
            t1 = t0 + step
            speed = bkp_speed(ordered, t0)
            # Safety bump: never let discretization miss a deadline. The
            # required speed is the max density of remaining work over the
            # urgent horizon.
            urgent = _min_feasible_speed(ordered, remaining, t0)
            speed = max(speed, urgent)
            if speed <= _EPS:
                continue
            _edf_slice(ordered, remaining, executed, t0, t1, speed)

    finished = np.array(
        [remaining[j] <= max(_WORK_TOL, 1e-6 * ordered[j].workload) for j in range(ordered.n)]
    )
    return schedule_from_segments(ordered, executed, finished)


def _min_feasible_speed(
    instance: Instance, remaining: dict[int, float], now: float
) -> float:
    """Smallest constant speed that keeps all remaining deadlines feasible."""
    alive = [
        j
        for j in range(instance.n)
        if remaining[j] > _WORK_TOL and instance[j].release <= now + _EPS
    ]
    best = 0.0
    for j in alive:
        horizon = instance[j].deadline
        work = sum(
            remaining[i] for i in alive if instance[i].deadline <= horizon + _EPS
        )
        if horizon > now + _EPS:
            best = max(best, work / (horizon - now))
    return best


def _edf_slice(
    instance: Instance,
    remaining: dict[int, float],
    executed: list[tuple[int, float, float, float]],
    t0: float,
    t1: float,
    speed: float,
) -> None:
    """Process released work EDF at ``speed`` over ``[t0, t1)`` in place."""
    t = t0
    while t < t1 - _EPS:
        ready = [
            j
            for j in range(instance.n)
            if remaining[j] > _WORK_TOL
            and instance[j].release <= t + _EPS
            and instance[j].deadline > t + _EPS
        ]
        if not ready:
            break
        j = min(ready, key=lambda i: (instance[i].deadline, i))
        run_until = min(t1, t + remaining[j] / speed, instance[j].deadline)
        if run_until <= t + _EPS:
            break
        executed.append((j, t, run_until, speed))
        remaining[j] -= (run_until - t) * speed
        if remaining[j] < _WORK_TOL:
            remaining[j] = 0.0
        t = run_until


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402


@register_algorithm(
    "bkp",
    online=True,
    multiprocessor=False,
    summary="Bansal-Kimbrel-Pruhs mirror algorithm (single processor)",
)
def _run_bkp_registered(instance):
    schedule = run_bkp(instance)
    return schedule, schedule
