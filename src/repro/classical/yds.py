"""The YDS optimal offline algorithm (Yao, Demers, Shenker; FOCS 1995).

YDS computes the energy-minimal single-processor schedule that finishes
*all* jobs by their deadlines. It repeatedly finds the *critical
interval* — the window ``[a, b]`` maximizing the intensity

    ``g(a, b) = (sum of workloads of jobs with [r_j, d_j] inside [a, b])
                / available time in [a, b]``

— freezes those jobs at speed ``g`` inside the window's still-available
time, and recurses on the rest. We implement the "available time"
formulation: instead of collapsing coordinates, previously frozen regions
are subtracted from the measure of candidate windows, which keeps all
bookkeeping in original time.

The realization runs each critical group EDF (earliest deadline first)
inside its region at the group's constant speed, which is feasible by the
classical YDS argument. Besides the optimal schedule itself, the module
exposes each job's assigned speed — the quantity the Chan–Lam–Li
admission test and the OA marginal analysis need.

Complexity: O(n^3) over at most ``n`` rounds of an O(n^2) scan — entirely
adequate for the instance sizes of the reproduction, and independently
cross-validated against the convex-programming optimum in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError, SolverError
from ..model.intervals import Grid, grid_for_instance
from ..model.job import Instance
from ..model.schedule import Schedule
from ..types import FloatArray
from .timeline import IntervalSet, edf_execute

__all__ = ["YdsResult", "yds"]

_EPS = 1e-12


@dataclass(frozen=True)
class YdsResult:
    """Output of the YDS algorithm.

    Attributes
    ----------
    schedule:
        The optimal schedule expressed on the instance's atomic grid.
    job_speeds:
        Per-job constant execution speed (the intensity of the job's
        critical group).
    groups:
        The critical groups in discovery order: ``(speed, job_ids,
        region)`` with ``region`` the frozen time set of that round.
    segments:
        Time-resolved EDF execution ``(job, start, end, speed)`` tuples,
        chronologically sorted — the exact trajectory online algorithms
        built on YDS plans follow.
    """

    schedule: Schedule
    job_speeds: FloatArray
    groups: tuple[tuple[float, tuple[int, ...], IntervalSet], ...]
    segments: tuple[tuple[int, float, float, float], ...]

    @property
    def energy(self) -> float:
        return self.schedule.energy


def yds(instance: Instance, *, grid: Grid | None = None) -> YdsResult:
    """Run YDS on a single-processor instance (values are ignored).

    Parameters
    ----------
    instance:
        Must have ``m == 1``. Every job is finished regardless of value.
    grid:
        Optional grid on which to express the resulting schedule; must
        refine the instance's own event grid. Defaults to the instance
        grid.
    """
    if instance.m != 1:
        raise InvalidParameterError(
            f"YDS is a single-processor algorithm; instance has m={instance.m}"
        )
    if instance.n == 0:
        raise InvalidParameterError("YDS needs at least one job")

    remaining = set(range(instance.n))
    frozen = IntervalSet.empty()
    groups: list[tuple[float, tuple[int, ...], IntervalSet]] = []
    job_speed = np.zeros(instance.n)

    while remaining:
        events = sorted(
            {instance[j].release for j in remaining}
            | {instance[j].deadline for j in remaining}
        )
        best: tuple[float, float, float, list[int]] | None = None
        for ai in range(len(events)):
            for bi in range(ai + 1, len(events)):
                a, b = events[ai], events[bi]
                inside = [
                    j
                    for j in remaining
                    if instance[j].release >= a - _EPS
                    and instance[j].deadline <= b + _EPS
                ]
                if not inside:
                    continue
                avail = (b - a) - frozen.measure_within(a, b)
                if avail <= _EPS:
                    raise SolverError(
                        f"no available time left in candidate window [{a}, {b}] "
                        "yet jobs remain — inconsistent frozen state"
                    )
                g = sum(instance[j].workload for j in inside) / avail
                if best is None or g > best[0] + _EPS:
                    best = (g, a, b, inside)
        if best is None:  # pragma: no cover - remaining non-empty implies a window
            raise SolverError("no critical window found")
        g, a, b, inside = best
        region = IntervalSet.span(a, b).subtract(frozen)
        groups.append((g, tuple(sorted(inside)), region))
        for j in inside:
            job_speed[j] = g
        frozen = frozen.union(region)
        remaining -= set(inside)

    # Realize every critical group by EDF inside its region.
    all_segments: list[tuple[int, float, float, float]] = []
    for g, job_ids, region in groups:
        segs = edf_execute(
            job_ids=list(job_ids),
            releases=[instance[j].release for j in job_ids],
            deadlines=[instance[j].deadline for j in job_ids],
            workloads=[instance[j].workload for j in job_ids],
            region=region,
            speed=g,
        )
        all_segments.extend(segs)
    all_segments.sort(key=lambda s: (s[1], s[0]))

    target_grid = grid or grid_for_instance(instance)
    loads = _loads_from_segments(instance.n, target_grid, all_segments)
    schedule = Schedule(
        instance=instance,
        grid=target_grid,
        loads=loads,
        finished=np.ones(instance.n, dtype=bool),
    )
    return YdsResult(
        schedule=schedule,
        job_speeds=job_speed,
        groups=tuple(groups),
        segments=tuple(all_segments),
    )


def _loads_from_segments(
    n: int, grid: Grid, segments: list[tuple[int, float, float, float]]
) -> FloatArray:
    """Accumulate segment work into a per-job per-interval load matrix.

    Segments may straddle grid boundaries; the work splits by overlap.
    """
    loads = np.zeros((n, grid.size))
    bounds = grid.boundaries
    for job, start, end, speed in segments:
        k0 = grid.locate(start)
        k1 = grid.locate(end - _EPS) if end - _EPS > start else k0
        for k in range(k0, k1 + 1):
            lo = max(start, float(bounds[k]))
            hi = min(end, float(bounds[k + 1]))
            if hi > lo + _EPS:
                loads[job, k] += (hi - lo) * speed
    return loads


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402


@register_algorithm(
    "yds",
    online=False,
    multiprocessor=False,
    summary="Yao-Demers-Shenker offline optimum (single processor)",
)
def _run_yds_registered(instance):
    result = yds(instance)
    return result.schedule, result
