"""The YDS optimal offline algorithm (Yao, Demers, Shenker; FOCS 1995).

YDS computes the energy-minimal single-processor schedule that finishes
*all* jobs by their deadlines. It repeatedly finds the *critical
interval* — the window ``[a, b]`` maximizing the intensity

    ``g(a, b) = (sum of workloads of jobs with [r_j, d_j] inside [a, b])
                / available time in [a, b]``

— freezes those jobs at speed ``g`` inside the window's still-available
time, and recurses on the rest. We implement the "available time"
formulation: instead of collapsing coordinates, previously frozen regions
are subtracted from the measure of candidate windows, which keeps all
bookkeeping in original time.

The realization runs each critical group EDF (earliest deadline first)
inside its region at the group's constant speed, which is feasible by the
classical YDS argument. Besides the optimal schedule itself, the module
exposes each job's assigned speed — the quantity the Chan–Lam–Li
admission test and the OA marginal analysis need.

Complexity: the critical-interval search of each round evaluates all
O(n^2) candidate windows through precomputed prefix-workload vectors —
streaming one release-event row at a time over a deadline-bucket cumsum
— instead of the historical O(n) membership rescan per window, so a
round costs O(E^2) vectorized work (E = remaining events) rather than
O(E^2 · n) interpreted work. The historical literal scan is kept as
``scan="reference"`` for differential testing; the fast scan re-derives
the selected window's intensity with the reference's exact float
operations, so the realized schedules are bit-identical (asserted by
the parity suite, and independently cross-validated against the
convex-programming optimum in the tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError, SolverError
from ..model.intervals import Grid, grid_for_instance
from ..model.job import Instance
from ..model.schedule import Schedule
from ..types import FloatArray
from .timeline import IntervalSet, edf_execute

__all__ = ["YdsResult", "yds"]

_EPS = 1e-12


@dataclass(frozen=True)
class YdsResult:
    """Output of the YDS algorithm.

    Attributes
    ----------
    schedule:
        The optimal schedule expressed on the instance's atomic grid.
    job_speeds:
        Per-job constant execution speed (the intensity of the job's
        critical group).
    groups:
        The critical groups in discovery order: ``(speed, job_ids,
        region)`` with ``region`` the frozen time set of that round.
    segments:
        Time-resolved EDF execution ``(job, start, end, speed)`` tuples,
        chronologically sorted — the exact trajectory online algorithms
        built on YDS plans follow.
    """

    schedule: Schedule
    job_speeds: FloatArray
    groups: tuple[tuple[float, tuple[int, ...], IntervalSet], ...]
    segments: tuple[tuple[int, float, float, float], ...]

    @property
    def energy(self) -> float:
        return self.schedule.energy


def _critical_window_reference(
    instance: Instance, remaining: set, events: list, frozen: IntervalSet
) -> tuple[float, float, float, list[int]]:
    """The historical literal critical-window scan (O(E^2 · n)).

    Kept verbatim for differential testing against the fast scan.
    """
    best: tuple[float, float, float, list[int]] | None = None
    for ai in range(len(events)):
        for bi in range(ai + 1, len(events)):
            a, b = events[ai], events[bi]
            inside = [
                j
                for j in remaining
                if instance[j].release >= a - _EPS
                and instance[j].deadline <= b + _EPS
            ]
            if not inside:
                continue
            avail = (b - a) - frozen.measure_within(a, b)
            if avail <= _EPS:
                raise SolverError(
                    f"no available time left in candidate window [{a}, {b}] "
                    "yet jobs remain — inconsistent frozen state"
                )
            g = sum(instance[j].workload for j in inside) / avail
            if best is None or g > best[0] + _EPS:
                best = (g, a, b, inside)
    if best is None:  # pragma: no cover - remaining non-empty implies a window
        raise SolverError("no critical window found")
    return best


def _critical_window(
    instance: Instance, remaining: set, events: list, frozen: IntervalSet
) -> tuple[float, float, float, list[int]]:
    """Fast critical-window scan over precomputed prefix workloads.

    For every candidate window ``[events[ai], events[bi]]`` the
    contained workload is a prefix sum over a deadline-index bucket
    vector of the jobs released at or after ``events[ai]`` — one
    cumsum per release row instead of an O(n) membership rescan per
    window — and the frozen-time correction is a precomputed cumulative
    measure, so a round is O(E^2) vectorized work and O(E) memory.

    Selection replays the reference scan's exact sequential rule (a
    window wins iff its intensity beats the incumbent by more than
    ``_EPS``, rows in ``ai``-ascending then ``bi``-ascending order) on
    the vectorized intensities, then re-derives the winning window's
    members and intensity with the reference's literal float
    operations — so the value handed to the EDF realization is bitwise
    the reference's.
    """
    ev = np.asarray(events, dtype=np.float64)
    big_e = ev.size
    jobs = sorted(remaining)
    releases = np.array([instance[j].release for j in jobs])
    deadlines = np.array([instance[j].deadline for j in jobs])
    workloads = np.array([instance[j].workload for j in jobs])
    # Job j belongs to window (ai, bi) iff ai <= last_release_index[j]
    # and bi >= first_deadline_index[j] — the index translation of the
    # reference's eps-tolerant membership test.
    last_release = np.searchsorted(ev, releases + _EPS, side="right") - 1
    first_deadline = np.searchsorted(ev, deadlines - _EPS, side="left")
    # Cumulative frozen measure below each event time.
    frozen_below = np.zeros(big_e)
    for part_lo, part_hi in frozen.parts:
        frozen_below += np.clip(np.minimum(ev, part_hi) - part_lo, 0.0, None)

    # Jobs stream out of the bucket vectors as ai rises past their last
    # eligible release row. The float bucket carries the workloads; the
    # integer bucket carries exact membership counts — removal leaves
    # float dust in the workload sums, so emptiness must never be
    # judged from them (a fully frozen window misread as occupied would
    # raise a spurious SolverError).
    bucket = np.zeros(big_e)
    members = np.zeros(big_e, dtype=np.int64)
    np.add.at(bucket, first_deadline, workloads)
    np.add.at(members, first_deadline, 1)
    removal_order = np.argsort(last_release, kind="stable")
    removal_ptr = 0

    best: tuple[int, int] | None = None
    best_val = -math.inf
    for ai in range(big_e - 1):
        while (
            removal_ptr < len(jobs)
            and last_release[removal_order[removal_ptr]] < ai
        ):
            j = removal_order[removal_ptr]
            bucket[first_deadline[j]] -= workloads[j]
            members[first_deadline[j]] -= 1
            removal_ptr += 1
        if removal_ptr == len(jobs):
            break
        inside_work = np.cumsum(bucket)[ai + 1 :]
        valid = np.cumsum(members)[ai + 1 :] > 0
        if not valid.any():
            continue
        avail = (ev[ai + 1 :] - ev[ai]) - (frozen_below[ai + 1 :] - frozen_below[ai])
        if bool(np.any(valid & (avail <= _EPS))):
            bi = int(np.nonzero(valid & (avail <= _EPS))[0][0]) + ai + 1
            raise SolverError(
                f"no available time left in candidate window "
                f"[{float(ev[ai])}, {float(ev[bi])}] "
                "yet jobs remain — inconsistent frozen state"
            )
        intensity = np.full(avail.size, -math.inf)
        intensity[valid] = inside_work[valid] / avail[valid]
        # Replay of the sequential ``g > best + _EPS`` update rule.
        start = 0
        while True:
            better = np.nonzero(intensity[start:] > best_val + _EPS)[0]
            if better.size == 0:
                break
            pos = start + int(better[0])
            best_val = float(intensity[pos])
            best = (ai, ai + 1 + pos)
            start = pos + 1
    if best is None:  # pragma: no cover - remaining non-empty implies a window
        raise SolverError("no critical window found")
    ai, bi = best
    a, b = events[ai], events[bi]
    # Exact re-derivation with the reference's float operations (the
    # vectorized intensities may differ in final ulps — never enough to
    # change the winner beyond an _EPS tie, but the committed speed
    # must be bit-exact).
    inside = [
        j
        for j in remaining
        if instance[j].release >= a - _EPS and instance[j].deadline <= b + _EPS
    ]
    avail = (b - a) - frozen.measure_within(a, b)
    if avail <= _EPS:  # pragma: no cover - caught by the vectorized check
        raise SolverError(
            f"no available time left in candidate window [{a}, {b}] "
            "yet jobs remain — inconsistent frozen state"
        )
    g = sum(instance[j].workload for j in inside) / avail
    return g, a, b, inside


def yds(
    instance: Instance, *, grid: Grid | None = None, scan: str = "fast"
) -> YdsResult:
    """Run YDS on a single-processor instance (values are ignored).

    Parameters
    ----------
    instance:
        Must have ``m == 1``. Every job is finished regardless of value.
    grid:
        Optional grid on which to express the resulting schedule; must
        refine the instance's own event grid. Defaults to the instance
        grid.
    scan:
        ``"fast"`` (default) finds each round's critical window through
        the vectorized prefix-workload scan; ``"reference"`` uses the
        historical literal rescan. Identical results (the parity suite
        asserts it); the reference exists for differential testing.
    """
    if instance.m != 1:
        raise InvalidParameterError(
            f"YDS is a single-processor algorithm; instance has m={instance.m}"
        )
    if instance.n == 0:
        raise InvalidParameterError("YDS needs at least one job")
    if scan not in ("fast", "reference"):
        raise InvalidParameterError(
            f"scan must be 'fast' or 'reference', got {scan!r}"
        )
    find_window = (
        _critical_window if scan == "fast" else _critical_window_reference
    )

    remaining = set(range(instance.n))
    frozen = IntervalSet.empty()
    groups: list[tuple[float, tuple[int, ...], IntervalSet]] = []
    job_speed = np.zeros(instance.n)

    while remaining:
        events = sorted(
            {instance[j].release for j in remaining}
            | {instance[j].deadline for j in remaining}
        )
        g, a, b, inside = find_window(instance, remaining, events, frozen)
        region = IntervalSet.span(a, b).subtract(frozen)
        groups.append((g, tuple(sorted(inside)), region))
        for j in inside:
            job_speed[j] = g
        frozen = frozen.union(region)
        remaining -= set(inside)

    # Realize every critical group by EDF inside its region.
    all_segments: list[tuple[int, float, float, float]] = []
    for g, job_ids, region in groups:
        segs = edf_execute(
            job_ids=list(job_ids),
            releases=[instance[j].release for j in job_ids],
            deadlines=[instance[j].deadline for j in job_ids],
            workloads=[instance[j].workload for j in job_ids],
            region=region,
            speed=g,
        )
        all_segments.extend(segs)
    all_segments.sort(key=lambda s: (s[1], s[0]))

    target_grid = grid or grid_for_instance(instance)
    loads = _loads_from_segments(instance.n, target_grid, all_segments)
    schedule = Schedule(
        instance=instance,
        grid=target_grid,
        loads=loads,
        finished=np.ones(instance.n, dtype=bool),
    )
    return YdsResult(
        schedule=schedule,
        job_speeds=job_speed,
        groups=tuple(groups),
        segments=tuple(all_segments),
    )


def _loads_from_segments(
    n: int, grid: Grid, segments: list[tuple[int, float, float, float]]
) -> FloatArray:
    """Accumulate segment work into a per-job per-interval load matrix.

    Segments may straddle grid boundaries; the work splits by overlap.
    """
    loads = np.zeros((n, grid.size))
    bounds = grid.boundaries
    for job, start, end, speed in segments:
        k0 = grid.locate(start)
        k1 = grid.locate(end - _EPS) if end - _EPS > start else k0
        for k in range(k0, k1 + 1):
            lo = max(start, float(bounds[k]))
            hi = min(end, float(bounds[k + 1]))
            if hi > lo + _EPS:
                loads[job, k] += (hi - lo) * speed
    return loads


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402


@register_algorithm(
    "yds",
    online=False,
    multiprocessor=False,
    summary="Yao-Demers-Shenker offline optimum (single processor)",
)
def _run_yds_registered(instance):
    result = yds(instance)
    return result.schedule, result
