"""The profit objective of Pruhs & Stein and its relation to the paper's.

Pruhs and Stein ("How to Schedule When You Have to Buy Your Energy",
APPROX 2010 — reference [13] of the paper) *maximize profit*: the value of
finished jobs minus the energy bought to finish them. Chan, Lam, and Li —
and the paper we reproduce — *minimize loss*: energy plus the value of
unfinished jobs. The two objectives are complementary on every schedule:

    profit(S) + loss(S) = total value of all jobs,

so the same schedule optimizes both, and an *offline* optimum for one is
an offline optimum for the other. **Competitive ratios do not transfer**,
though: a multiplicative guarantee on the loss says nothing multiplicative
about the profit when the optimal profit is close to zero. This is the
formal reason the paper's α^α loss guarantee coexists with Pruhs & Stein's
impossibility result (no bounded profit-competitiveness without resource
augmentation) — see :mod:`repro.profit.hard_instances` for the explicit
family, and :mod:`repro.profit.augmented` for the augmentation remedy.

This module defines the profit accounting and the exact offline profit
optimum (reusing the (IMP) enumeration solver).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pd import PDResult
from ..model.job import Instance
from ..model.schedule import Schedule
from ..offline.optimal import solve_exact

__all__ = [
    "ProfitBreakdown",
    "profit_of",
    "profit_of_result",
    "optimal_profit",
    "loss_profit_gap",
]


@dataclass(frozen=True)
class ProfitBreakdown:
    """Profit of a schedule split into earned value and energy bought.

    Attributes
    ----------
    earned_value:
        Sum of values over finished jobs (the revenue).
    energy:
        Total energy of the schedule (the bill).
    total_value:
        Sum of values over *all* jobs — the conversion constant between
        the profit and loss objectives.
    """

    earned_value: float
    energy: float
    total_value: float

    @property
    def profit(self) -> float:
        """``earned_value - energy``; may legitimately be negative."""
        return self.earned_value - self.energy

    @property
    def loss(self) -> float:
        """The paper's objective on the same schedule (Equation (1))."""
        return self.total_value - self.profit

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"profit {self.profit:.6g} = earned {self.earned_value:.6g} "
            f"- energy {self.energy:.6g}"
        )


def profit_of(schedule: Schedule) -> ProfitBreakdown:
    """Profit accounting for any schedule in the library.

    Complementarity with the loss objective holds by construction:
    ``profit_of(s).loss == s.cost`` for every schedule ``s`` (a property
    test in ``tests/test_profit.py`` pins this down).
    """
    instance = schedule.instance
    earned = float(instance.values[schedule.finished].sum())
    return ProfitBreakdown(
        earned_value=earned,
        energy=schedule.energy,
        total_value=instance.total_value,
    )


def profit_of_result(result: PDResult) -> ProfitBreakdown:
    """Profit accounting for a PD run (convenience wrapper)."""
    return profit_of(result.schedule)


def optimal_profit(instance: Instance, **solver_kwargs) -> float:
    """Exact maximum profit over all schedules (small ``n`` only).

    By complementarity this is ``total_value - cost(OPT)``, so the (IMP)
    enumeration solver of :mod:`repro.offline.optimal` does all the work.
    The result can be negative only if every acceptance set loses money,
    in which case rejecting everything is optimal and the profit is 0 —
    the solver's reject-all incumbent guarantees this floor.
    """
    solution = solve_exact(instance, **solver_kwargs)
    return instance.total_value - solution.cost


def loss_profit_gap(schedule: Schedule) -> float:
    """``|profit + loss - total_value|`` — zero up to float rounding.

    Exposed as a first-class diagnostic so analysis reports and property
    tests can assert the complementarity identity explicitly.
    """
    breakdown = profit_of(schedule)
    return abs(breakdown.profit + schedule.cost - breakdown.total_value)
