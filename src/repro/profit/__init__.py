"""The Pruhs–Stein profit objective (reference [13] of the paper).

Profit = value earned − energy bought; loss (the paper's objective) =
energy + value lost. The two are complementary — ``profit + loss = total
value`` on every schedule — yet behave completely differently under
competitive analysis. This subpackage makes that precise and executable:

* :mod:`repro.profit.model` — profit accounting and the exact offline
  profit optimum.
* :mod:`repro.profit.hard_instances` — the margin-erosion family on which
  *every* online algorithm's profit-competitiveness is unbounded
  (Pruhs & Stein's impossibility result, with closed forms).
* :mod:`repro.profit.augmented` — ``(1 + eps)``-speed resource
  augmentation, realized exactly via a workload change of variables.

E12 (``benchmarks/bench_e12_profit.py``) sweeps the margin and the
augmentation and reproduces the qualitative dichotomy: unbounded ratio
without augmentation, O(1) with.
"""

from .augmented import AugmentedProfitResult, run_pd_augmented
from .hard_instances import (
    bait_value,
    opt_profit_lower_bound,
    pd_energy_closed_form,
    vanishing_margin_instance,
)
from .model import (
    ProfitBreakdown,
    loss_profit_gap,
    optimal_profit,
    profit_of,
    profit_of_result,
)

__all__ = [
    "ProfitBreakdown",
    "profit_of",
    "profit_of_result",
    "optimal_profit",
    "loss_profit_gap",
    "vanishing_margin_instance",
    "pd_energy_closed_form",
    "opt_profit_lower_bound",
    "bait_value",
    "AugmentedProfitResult",
    "run_pd_augmented",
]
