"""Resource augmentation: PD on a ``(1 + eps)``-speed machine.

Pruhs & Stein's positive result pairs their impossibility proof with a
*scalable* algorithm: give the online scheduler processors that are
``(1 + eps)`` times faster than the adversary's (same power at
``(1 + eps)``-fold speed) and bounded profit-competitiveness becomes
possible, with a constant depending only on ``eps`` and ``alpha``.

We realize augmentation exactly, not approximately, through a workload
change of variables: a machine that processes ``(1 + eps) * s`` work per
unit time at power ``P(s)`` serves workload ``w`` exactly like a normal
machine serves workload ``w / (1 + eps)``. So the augmented run *is* a
normal PD run on the shrunk instance; only the accounting (which job
earned its value) is mapped back. Energy, acceptance decisions, and the
Theorem 3 certificate of the shrunk run all remain valid verbatim.

The quantitative effect on the hard family of
:mod:`repro.profit.hard_instances` has a closed form: PD's energy shrinks
by ``(1 + eps)**(1 - alpha)`` (each committed speed drops by the
augmentation factor while durations are unchanged), so its profit jumps
from ``margin`` to ``margin + (1 - (1+eps)**(1-alpha)) * PD_energy`` —
bounded away from zero *independently of the margin*. E12 sweeps both
knobs and shows the ratio collapsing from unbounded to O(1), mirroring
Pruhs & Stein's qualitative claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pd import PDResult, run_pd
from ..errors import InvalidParameterError
from ..model.job import Instance
from .model import ProfitBreakdown

__all__ = ["AugmentedProfitResult", "run_pd_augmented"]


@dataclass(frozen=True)
class AugmentedProfitResult:
    """A PD run on an ``(1 + eps)``-speed machine, profit-accounted.

    Attributes
    ----------
    instance:
        The original (unshrunk) instance.
    epsilon:
        The augmentation amount; 0 reproduces plain PD exactly.
    inner:
        The PD result on the shrunk instance. Its schedule's *nominal*
        speeds are the augmented machine's power-relevant speeds; work
        quantities refer to the shrunk workloads.
    """

    instance: Instance
    epsilon: float
    inner: PDResult

    @property
    def energy(self) -> float:
        """Energy bought by the augmented machine (shrunk-run energy)."""
        return self.inner.schedule.energy

    @property
    def earned_value(self) -> float:
        """Value of jobs the augmented run finishes."""
        ordered = self.instance.sorted_by_release()
        return float(ordered.values[self.inner.accepted_mask].sum())

    @property
    def profit(self) -> ProfitBreakdown:
        """Profit accounting against the *original* values and workloads."""
        return ProfitBreakdown(
            earned_value=self.earned_value,
            energy=self.energy,
            total_value=self.instance.total_value,
        )

    def summary(self) -> str:
        """Human-readable run summary."""
        p = self.profit
        return (
            f"Augmented PD (eps={self.epsilon:g}): {p}\n"
            f"  accepted {int(self.inner.accepted_mask.sum())}"
            f"/{self.instance.n} jobs"
        )


def run_pd_augmented(
    instance: Instance, epsilon: float, *, delta: float | None = None
) -> AugmentedProfitResult:
    """Run PD with ``(1 + epsilon)``-speed resource augmentation.

    Parameters
    ----------
    instance:
        The original problem instance (adversary's machine model).
    epsilon:
        Augmentation; must be ``>= 0``. ``0`` degrades to plain PD.
    delta:
        PD's aggressiveness parameter, forwarded to the inner run.

    Notes
    -----
    Because the shrunk instance is a legitimate instance of the paper's
    model, everything proven about PD applies to the inner run — in
    particular ``inner`` still carries its own α^α loss certificate. The
    profit guarantee against the unaugmented optimum is the *additional*
    content quantified empirically by E12.
    """
    if epsilon < 0.0:
        raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
    shrunk = instance.scaled(work=1.0 / (1.0 + epsilon))
    inner = run_pd(shrunk, delta=delta)
    return AugmentedProfitResult(
        instance=instance.sorted_by_release(), epsilon=epsilon, inner=inner
    )


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
from ..engine.registry import register_algorithm  # noqa: E402

#: Augmentation used by the bare ``pd-aug`` registry entry. Callers who
#: want another epsilon address the variant directly —
#: ``pd-aug?epsilon=0.3`` — or sweep it with an
#: :class:`~repro.engine.experiment.ExperimentSpec` ``variants`` axis.
REGISTERED_EPSILON = 0.1


def _pd_aug_certificate(result: AugmentedProfitResult):
    from ..analysis.certificates import dual_certificate

    return dual_certificate(result.inner)


@register_algorithm(
    "pd-aug",
    profit_aware=True,
    online=True,
    multiprocessor=True,
    certificate=_pd_aug_certificate,
    summary=f"PD with (1 + eps) speed augmentation (Pruhs-Stein; default eps={REGISTERED_EPSILON})",
    variant_params={"epsilon": float, "delta": float},
)
def _run_pd_aug_registered(
    instance, *, epsilon: float = REGISTERED_EPSILON, delta: float | None = None
):
    result = run_pd_augmented(instance, epsilon, delta=delta)
    return result.inner.schedule, result
