"""Instances on which profit-competitiveness collapses without augmentation.

Pruhs & Stein's central negative result: **no online algorithm has bounded
profit-competitiveness without resource augmentation.** The obstruction is
margin erosion — an adversary serves jobs whose total value exceeds the
online algorithm's energy by an arbitrarily small margin, then exploits
its inability to re-plan committed work. The clairvoyant optimum keeps a
profit bounded away from zero; the online schedule's convexity penalty
for late-arriving work eats its margin whole.

:func:`vanishing_margin_instance` builds the minimal two-job version of
this trap, tuned so that every quantity has a closed form:

* Job 1 ("bait"): window ``[0, 2)``, workload 1. PD (and OA, and any lazy
  marginal-cost scheduler) spreads it at speed 1/2 over the full window
  and **commits** — PD never moves an earlier job's assignment.
* Job 2 ("squeeze"): window ``[1, 2)``, workload 1, value large enough to
  force acceptance. PD must stack it on the committed half of job 1 at
  speed ``3/2``; the clairvoyant optimum runs both jobs back-to-back at
  speed 1 (or drops the cheap bait entirely — either way it keeps a
  constant profit).

Closed forms (single processor, exponent ``alpha``):

* ``PD energy   = (1/2)**alpha + (3/2)**alpha``  (accepts both jobs)
* total value is pinned to ``PD energy + margin``, so **PD's profit is
  exactly ``margin``**, while the optimum's profit is at least
  ``max(total - 2, v2 - 1)`` — bounded away from zero. The profit ratio
  therefore grows like ``1/margin``: unbounded as the margin vanishes,
  which is the Pruhs–Stein impossibility made executable (E12 sweeps it).

The family needs ``alpha >= 2``. Below that the paper's rejection factor
``alpha**(alpha-2)`` drops under 1, the acceptance thresholds of the two
jobs sum to *more* than the pinned total value, and PD escapes the trap
by rejecting the squeeze — an instructive corollary of the rejection
policy, recorded in E12, but not a working trap.
"""

from __future__ import annotations

from ..errors import InvalidParameterError
from ..model.job import Instance, Job

__all__ = [
    "vanishing_margin_instance",
    "pd_energy_closed_form",
    "opt_profit_lower_bound",
    "bait_value",
]

#: Headroom factor keeping the bait job strictly above PD's acceptance
#: threshold (threshold equality is a measure-zero edge we stay off).
_BAIT_HEADROOM = 1.1


def pd_energy_closed_form(alpha: float) -> float:
    """Energy PD spends on the trap: ``(1/2)^alpha + (3/2)^alpha``."""
    return 0.5**alpha + 1.5**alpha


def bait_value(alpha: float) -> float:
    """Value of job 1: just above PD's acceptance threshold.

    PD accepts a job iff its planned energy is at most
    ``alpha**(alpha-2)`` times its value (the paper's Section 3 policy).
    Job 1's planned energy at arrival is ``(1/2)**(alpha-1)``, so any
    value above ``(1/2)**(alpha-1) / alpha**(alpha-2)`` is accepted; we
    add 10% headroom.
    """
    return _BAIT_HEADROOM * 0.5 ** (alpha - 1.0) / alpha ** (alpha - 2.0)


def opt_profit_lower_bound(alpha: float, margin: float) -> float:
    """Closed-form lower bound on the clairvoyant optimum's profit.

    Two explicit strategies: accept both jobs back-to-back at speed 1
    (energy 2), or reject the bait and run the squeeze alone at speed 1
    (energy 1). The optimum is at least the better of the two.
    """
    total = pd_energy_closed_form(alpha) + margin
    v1 = bait_value(alpha)
    return max(total - 2.0, (total - v1) - 1.0, 0.0)


def vanishing_margin_instance(margin: float, alpha: float) -> Instance:
    """The two-job margin-erosion trap with total value ``PD energy + margin``.

    Parameters
    ----------
    margin:
        How much total value exceeds PD's energy — PD's entire profit.
        Must be positive; the profit ratio scales like ``1/margin``.
    alpha:
        Energy exponent, ``>= 2`` (see module docstring for why the trap
        degenerates below 2).

    Notes
    -----
    Acceptance of both jobs is what pins PD's profit to ``margin``:

    * the bait clears its threshold by construction of
      :func:`bait_value`;
    * the squeeze's planned energy is ``(3/2)**(alpha-1)`` and its value
      is ``PD energy + margin - bait``, which clears the threshold
      ``(3/2)**(alpha-1) / alpha**(alpha-2)`` for every ``alpha >= 2``
      (the test-suite asserts this across the sweep range).
    """
    if margin <= 0.0:
        raise InvalidParameterError(f"margin must be > 0, got {margin}")
    if not (alpha >= 2.0):
        raise InvalidParameterError(
            f"the margin-erosion trap needs alpha >= 2 (got {alpha}): below "
            "that PD's rejection factor lets it escape by rejecting the "
            "squeeze job"
        )
    total_value = pd_energy_closed_form(alpha) + margin
    v1 = bait_value(alpha)
    v2 = total_value - v1
    if v2 <= 0.0:  # pragma: no cover - impossible for alpha >= 2
        raise InvalidParameterError(
            f"alpha={alpha} makes the trap degenerate (squeeze value {v2} <= 0)"
        )
    return Instance(
        (
            Job(0.0, 2.0, 1.0, v1, name="bait"),
            Job(1.0, 2.0, 1.0, v2, name="squeeze"),
        ),
        m=1,
        alpha=alpha,
    )
