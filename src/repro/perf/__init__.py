"""Incremental algorithm kernels and the performance harness.

``repro.perf`` holds the engineering layer that makes the hot
simulation paths scale without changing a single bit of their output:

* :mod:`repro.perf.kernels` — incremental per-interval load stores
  (:class:`~repro.perf.kernels.IntervalLoads`) and the batched window
  evaluator (:class:`~repro.perf.kernels.WindowKernel`) the primal-dual
  water-filling prices jobs against;
* :mod:`repro.perf.epochs` — arrival-epoch batched execution of the
  PD main loop (:func:`~repro.perf.epochs.arrive_epochs` plus the
  ambient :func:`~repro.perf.epochs.batch_mode` switch): blocks of
  consecutive arrivals consumed off the columnar job storage with
  vectorized order/window/screen passes, bit-identical decisions;
* :mod:`repro.perf.energy` — batched multi-interval energy evaluation
  (:func:`~repro.perf.energy.schedule_energy` over dense load matrices,
  :func:`~repro.perf.energy.stores_energy` over streaming
  ``IntervalLoads``), one vectorized pass instead of a per-column loop;
* :mod:`repro.perf.reference` — the historical straight-line
  implementations (dense-matrix PD, per-column energy), kept verbatim
  for differential ("bit parity") testing against the kernels;
* :mod:`repro.perf.bench` — named perf scenarios, the machine-readable
  ``BENCH_<scenario>.json`` emitter, and the baseline-comparison gate
  behind ``python -m repro bench``.

Every kernel is bit-parity-tested against the reference path: same
schedules, same costs, same certificates, same cache keys. Speed is an
execution strategy here, never a result change.
"""

from .energy import schedule_energy, stores_energy
from .epochs import (
    DEFAULT_EPOCH_SIZE,
    arrive_epochs,
    batch_mode,
    current_batch_mode,
)
from .kernels import IntervalLoads, WindowKernel

__all__ = [
    "DEFAULT_EPOCH_SIZE",
    "IntervalLoads",
    "WindowKernel",
    "arrive_epochs",
    "batch_mode",
    "current_batch_mode",
    "schedule_energy",
    "stores_energy",
]
