"""Historical straight-line implementations, kept for parity testing.

The incremental kernels (:mod:`repro.perf.kernels`) promise *bit
parity*: same schedules, same costs, same certificates, same cache
keys as the code they replaced. That promise is only checkable if the
replaced code still exists — so the pre-kernel implementations live
here, verbatim (dense load matrices, per-arrival ``SortedLoads``
rebuilds, full-matrix refinement remaps), exercised exclusively by the
differential tests in ``tests/test_perf_kernels.py`` and available for
ad-hoc A/B measurements via the bench harness.

Deliberately slow. Never import this module from a hot path.
"""

from __future__ import annotations

import numpy as np

from ..chen.interval_power import SortedLoads
from ..core.pd import JobDecision, PDResult
from ..core.waterfill import waterfill_job
from ..errors import InvalidParameterError
from ..model.intervals import Grid, Refinement
from ..model.job import Instance, Job
from ..model.power import PowerFunction
from ..model.schedule import Schedule
from ..types import FloatArray

__all__ = [
    "PARITY_PAIRS",
    "PDSchedulerReference",
    "arrive_epochs_reference",
    "run_pd_reference",
    "schedule_energy_reference",
]

#: Kernel -> reference counterpart, for pairs the ``<name>_reference``
#: naming convention cannot express (a data-structure kernel whose
#: reference twin is the whole scheduler it accelerates). ``repro lint``
#: (RPR3xx) reads this table: every public ``repro.perf`` kernel must
#: resolve to a name defined in this module, and some test must
#: exercise both names together.
PARITY_PAIRS = {
    "IntervalLoads": "run_pd_reference",
    "WindowKernel": "run_pd_reference",
    "schedule_energy": "schedule_energy_reference",
    "stores_energy": "schedule_energy_reference",
    # Arrival-epoch batched execution (repro.perf.epochs): the reference
    # twin is the per-arrival loop itself — one scalar arrive() per job.
    "DEFAULT_EPOCH_SIZE": "arrive_epochs_reference",
    "arrive_epochs": "arrive_epochs_reference",
    "batch_mode": "arrive_epochs_reference",
    "current_batch_mode": "arrive_epochs_reference",
}


def schedule_energy_reference(schedule: Schedule) -> float:
    """The historical per-column ``Schedule.energy`` loop, verbatim.

    Replaced by the batched all-columns kernel
    (:func:`repro.perf.energy.schedule_energy`); kept for differential
    testing of that kernel.
    """
    from ..chen.interval_power import interval_energy
    from ..chen.partition import _LOAD_EPS as _part_eps
    from ..model.schedule import _LOAD_EPS as _load_eps

    lengths = schedule.grid.lengths
    power = schedule.instance.power
    m = schedule.instance.m
    cols = np.ascontiguousarray(schedule.loads.T)
    total = 0.0
    for k in range(schedule.grid.size):
        col = cols[k]
        if float(col.sum()) <= _load_eps:
            continue
        active = col[col != 0.0]
        length = float(lengths[k])
        if active.size == 1:
            if float(active[0]) > _part_eps:
                total += (
                    float(np.sum(power.power_array(active / length))) * length
                )
            continue
        total += interval_energy(active, m, length, power)
    return total


class PDSchedulerReference:
    """The pre-kernel ``PDScheduler``: dense matrices, per-arrival sorts.

    A verbatim copy of the historical online scheduler. Every arrival
    rebuilds one :class:`SortedLoads` cache per window interval from the
    full ``(n, N)`` load matrix, grows both matrices by one row, and
    remaps every row through each grid refinement — O(n·N) per arrival,
    which is exactly the cost profile the incremental kernels remove.
    """

    def __init__(
        self,
        *,
        m: int,
        alpha: float,
        delta: float | None = None,
        power: PowerFunction | None = None,
    ) -> None:
        if m < 1:
            raise InvalidParameterError(f"m must be >= 1, got {m}")
        from ..model.power import PolynomialPower

        self.m = m
        if power is None:
            self.power = PolynomialPower(alpha)
            self.delta = (
                float(delta) if delta is not None else self.power.optimal_delta
            )
        else:
            self.power = power
            if delta is None:
                raise InvalidParameterError(
                    "delta must be given explicitly with a custom power "
                    "function (no Theorem 3 default applies)"
                )
            self.delta = float(delta)
        self._alpha = float(alpha)
        if self.delta <= 0.0:
            raise InvalidParameterError(f"delta must be > 0, got {self.delta}")

        self._jobs: list[Job] = []
        self._grid: Grid | None = None
        self._loads: FloatArray = np.zeros((0, 0))
        self._planned: FloatArray = np.zeros((0, 0))
        self._decisions: list[JobDecision] = []
        self._last_release = -np.inf

    def arrive(self, job: Job) -> JobDecision:
        if job.release < self._last_release - 1e-12:
            raise InvalidParameterError(
                f"jobs must arrive in release order: got release {job.release} "
                f"after {self._last_release}"
            )
        self._last_release = max(self._last_release, job.release)
        job_id = len(self._jobs)
        self._jobs.append(job)

        self._refine_grid(job)
        assert self._grid is not None
        ks = list(self._grid.covering(job.release, job.deadline))
        lengths = self._grid.lengths

        caches = [
            SortedLoads(self._loads[:, k], self.m, float(lengths[k])) for k in ks
        ]
        outcome = waterfill_job(
            caches,
            workload=job.workload,
            value=job.value,
            delta=self.delta,
            power=self.power,
        )

        n_new = job_id + 1
        grown = np.zeros((n_new, self._grid.size))
        grown[:job_id] = self._loads
        self._loads = grown
        grown_p = np.zeros((n_new, self._grid.size))
        grown_p[:job_id] = self._planned
        self._planned = grown_p

        if outcome.accepted:
            self._loads[job_id, ks] = outcome.loads
            self._planned[job_id, ks] = outcome.loads
        else:
            self._planned[job_id, ks] = outcome.loads

        decision = JobDecision(
            job_id=job_id,
            accepted=outcome.accepted,
            lam=outcome.lam,
            planned_speed=outcome.speed,
            planned_work=outcome.planned_work,
        )
        self._decisions.append(decision)
        return decision

    def finish(self) -> PDResult:
        if not self._jobs:
            raise InvalidParameterError("no jobs were processed")
        assert self._grid is not None
        instance = Instance(tuple(self._jobs), m=self.m, alpha=self._alpha)
        finished = np.array([d.accepted for d in self._decisions], dtype=bool)
        schedule = Schedule(
            instance=instance,
            grid=self._grid,
            loads=self._loads.copy(),
            finished=finished,
        )
        return PDResult(
            schedule=schedule,
            decisions=tuple(self._decisions),
            lambdas=np.array([d.lam for d in self._decisions]),
            planned_loads=self._planned.copy(),
            delta=self.delta,
        )

    def _refine_grid(self, job: Job) -> None:
        if self._grid is None:
            self._grid = Grid.from_points([job.release, job.deadline])
            self._loads = np.zeros((0, self._grid.size))
            self._planned = np.zeros((0, self._grid.size))
            return
        refinement = self._grid.refine([job.release, job.deadline])
        if refinement.grid.same_as(self._grid):
            return
        self._loads = _remap_rows(self._loads, refinement)
        self._planned = _remap_rows(self._planned, refinement)
        self._grid = refinement.grid


def _remap_rows(matrix: FloatArray, refinement: Refinement) -> FloatArray:
    """Apply a grid refinement to every row of a per-interval matrix."""
    if matrix.shape[0] == 0:
        return np.zeros((0, refinement.grid.size))
    return np.stack([refinement.split_row(row) for row in matrix])


def run_pd_reference(
    instance: Instance, *, delta: float | None = None
) -> PDResult:
    """Run the historical dense-matrix PD on a full instance."""
    ordered = instance.sorted_by_release()
    scheduler = PDSchedulerReference(
        m=ordered.m, alpha=ordered.alpha, delta=delta
    )
    for job in ordered.jobs:
        scheduler.arrive(job)
    return scheduler.finish()


def arrive_epochs_reference(scheduler, arrays) -> None:
    """The per-arrival twin of :func:`repro.perf.epochs.arrive_epochs`.

    Feeds the columnar block one scalar ``arrive()`` at a time — the
    exact loop the epoch layer replaces. The differential suite runs
    both drivers against identical schedulers and asserts byte-identical
    decisions, stores, planned loads, payloads, and cache keys.
    """
    for i in range(arrays.n):
        scheduler.arrive(arrays.job(i))
