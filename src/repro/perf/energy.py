"""Batched multi-interval energy evaluation (Equation (6), all columns).

``Schedule.energy`` historically walked the grid one column at a time:
per interval, drop the zeros, sort descending, run the dedication scan,
sum the dedicated powers, add the pool term. PR 5 fast-pathed the
single-job columns but left the per-column Python loop in place for
multi-job columns — at 100k+ jobs the loop dominates.

This module evaluates *all* columns in a handful of vectorized passes
while reproducing the reference loop bit for bit
(:func:`repro.perf.reference.schedule_energy_reference`, asserted by the
parity suite). The bit-parity obligations, and how each is met:

* ``numpy.sum``'s pairwise reduction tree depends only on the element
  count, so the emptiness gate (``col.sum() <= 1e-12``) is computed as
  one ``sum(axis=1)`` over the transposed copy — same tree per row as
  the reference's per-column ``col.sum()``.
* The dedication scan consumes the *nonzero* loads of a column in
  descending stable order, and its float sequence (sort, tail-first
  suffix ``cumsum``, ``u * (m - j) >= suffix[j] - tol`` tests) depends
  on the nonzero count ``p``. Columns are therefore **grouped by p**:
  within a group every per-column operation maps to one row of a dense
  ``(g, p)`` matrix op with identical per-element arithmetic
  (``cumsum`` along an axis is the same sequential accumulation as the
  1-D call).
* The dedicated energy term sums ``d`` power values pairwise, and the
  tree depends on ``d`` — so rows are **sub-grouped by d** and each
  sub-group is summed over a contiguous ``(g', d)`` slice.
* The pool term calls ``power(pool_speed)`` — Python scalar ``**``,
  which numpy's array ``**`` is not guaranteed to match in the last
  ulp — so pool contributions stay scalar, one Python call per
  multi-job column with a nonzero pool (rare: most pools are empty).
* The reference accumulates column energies into a Python float in
  ascending ``k``; skipped columns contribute nothing. Accumulating a
  per-column energy vector with ``cumsum`` (strictly sequential) is
  bitwise the same walk: skipped entries hold exact ``+0.0``, and
  ``t + 0.0`` is a bitwise no-op for every ``t >= 0.0``.

:func:`stores_energy` evaluates the same quantity straight off live
:class:`~repro.perf.kernels.IntervalLoads` stores — no dense ``(n, N)``
matrix — which is what lets the million-job PD bench report energy
without materializing a 30 GB schedule. The stores are already
descending-sorted with reference-bit suffix sums (the PR 5 insertion
lemma), so the per-interval arithmetic is literally the reference's;
the one caveat is the emptiness gate, which sums only the nonzero loads
(sequentially) where the dense reference sums the whole zero-padded
column (pairwise). The two gate values agree unless a column total sits
within one rounding step of the ``1e-12`` gate — generic position,
asserted exactly on every differential workload.
"""

from __future__ import annotations

import numpy as np

from typing import Sequence

from ..chen.partition import _LOAD_EPS as _PART_EPS
from ..errors import InvalidParameterError
from ..model.power import PowerFunction
from ..types import FloatArray
from .kernels import IntervalLoads

__all__ = ["schedule_energy", "stores_energy"]

#: Column emptiness gate — ``repro.model.schedule._LOAD_EPS``.
_GATE_EPS = 1e-12


def schedule_energy(
    loads: FloatArray,
    lengths: FloatArray,
    m: int,
    power: PowerFunction,
) -> float:
    """Energy of a dense ``(n, N)`` load matrix, all columns batched.

    Bit-identical to the per-column reference loop (see module
    docstring for the argument). ``lengths`` are the grid interval
    lengths; ``power`` is any power function exposing ``power_array``
    and scalar ``__call__``.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.ndim != 2:
        raise InvalidParameterError(
            f"loads must be 2-D, got shape {loads.shape}"
        )
    n, big_n = loads.shape
    if big_n == 0 or n == 0:
        return 0.0
    lengths = np.asarray(lengths, dtype=np.float64)

    cols = np.ascontiguousarray(loads.T)
    col_sums = cols.sum(axis=1)
    busy = col_sums > _GATE_EPS
    if not busy.any():
        return 0.0
    nonzero = cols != 0.0
    counts = nonzero.sum(axis=1)
    energies = np.zeros(big_n, dtype=np.float64)

    # --- single-active columns: elementwise, no partition machinery ---
    single = busy & (counts == 1)
    if single.any():
        ks = np.nonzero(single)[0]
        vals = cols[ks, np.argmax(nonzero[ks], axis=1)]
        keep = vals > _PART_EPS
        if keep.any():
            ks, vals = ks[keep], vals[keep]
            lens = lengths[ks]
            energies[ks] = power.power_array(vals / lens) * lens

    # --- multi-active columns: grouped by nonzero count p ---
    multi = busy & (counts >= 2)
    if multi.any():
        if bool((cols[multi] < -_PART_EPS).any()):
            # partition_loads would reject the first such column.
            raise InvalidParameterError("loads must be non-negative")
        for p in np.unique(counts[multi]).tolist():
            ks = np.nonzero(multi & (counts == p))[0]
            block = cols[ks]
            rows, cells = np.nonzero(block)
            # np.nonzero is row-major, so each row's actives keep their
            # original column order — the stable-sort tie key.
            active = block[rows, cells].reshape(ks.size, p)
            order = np.argsort(-active, axis=1, kind="stable")
            srt = np.take_along_axis(active, order, axis=1)
            suffix = np.concatenate(
                (
                    np.cumsum(srt[:, ::-1], axis=1)[:, ::-1],
                    np.zeros((ks.size, 1)),
                ),
                axis=1,
            )
            tol = _PART_EPS * np.maximum(1.0, suffix[:, 0])
            d = np.zeros(ks.size, dtype=np.int64)
            alive = np.ones(ks.size, dtype=bool)
            for j in range(1, min(p, m) + 1):
                u = srt[:, j - 1]
                alive = alive & (u > _PART_EPS)
                alive = alive & (u * (m - j) >= suffix[:, j] - tol)
                d[alive] = j
            pool = np.maximum(suffix[np.arange(ks.size), d], 0.0)
            lens = lengths[ks]
            ded = np.zeros(ks.size, dtype=np.float64)
            for dv in np.unique(d).tolist():
                if dv == 0:
                    continue  # empty dedicated sum is exactly 0.0 * length
                sel = d == dv
                block_d = np.ascontiguousarray(srt[sel, :dv])
                ded[sel] = (
                    np.sum(
                        power.power_array(block_d / lens[sel, None]), axis=1
                    )
                    * lens[sel]
                )
            energies[ks] = ded
            # Pool terms: scalar, to match power()'s Python ** bits.
            for i in np.nonzero(pool > _PART_EPS)[0].tolist():
                num_pool = m - int(d[i])
                pool_load = float(pool[i])
                if num_pool == 0 or pool_load <= _PART_EPS:
                    per_proc = 0.0
                else:
                    per_proc = pool_load / num_pool
                length = float(lens[i])
                energies[ks[i]] += num_pool * length * power(per_proc / length)

    return float(np.cumsum(energies)[-1])


def stores_energy(
    states: Sequence[IntervalLoads],
    lengths: FloatArray,
    m: int,
    power: PowerFunction,
) -> float:
    """Energy straight off live ``IntervalLoads`` stores (no dense matrix).

    ``states`` are per-interval stores as maintained by
    :class:`~repro.core.pd.PDScheduler` — loads descending with
    reference-bit suffix sums — so the partition arithmetic below is
    literally the reference's, skipping the sort it already has. See
    the module docstring for the emptiness-gate caveat.
    """
    total = 0.0
    for k, state in enumerate(states):
        p = len(state.loads)
        if p == 0 or state.suffix[0] <= _GATE_EPS:
            continue
        length = float(lengths[k])
        if p == 1:
            v = state.loads[0]
            if v > _PART_EPS:
                single = np.array([v], dtype=np.float64)
                total += (
                    float(np.sum(power.power_array(single / length))) * length
                )
            continue
        srt = np.asarray(state.loads, dtype=np.float64)
        suffix = state.suffix
        tol = _PART_EPS * max(1.0, float(suffix[0]))
        d = 0
        for j in range(1, min(p, m) + 1):
            u = float(srt[j - 1])
            if u <= _PART_EPS:
                break
            if u * (m - j) >= float(suffix[j]) - tol:
                d = j
            else:
                break
        pool_load = max(float(suffix[d]), 0.0)
        energy = float(np.sum(power.power_array(srt[:d] / length))) * length
        if pool_load > _PART_EPS:
            num_pool = m - d
            if num_pool == 0 or pool_load <= _PART_EPS:
                per_proc = 0.0
            else:
                per_proc = pool_load / num_pool
            energy += num_pool * length * power(per_proc / length)
        total += energy
    return total
