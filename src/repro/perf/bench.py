"""Named perf scenarios, the BENCH json emitter, and the baseline gate.

The CLI front end is ``python -m repro bench``. Each *scenario* runs a
fixed, seeded series of measurement points (``{n, m, wall_time, ...}``)
and emits a machine-readable ``BENCH_<scenario>.json`` payload:

.. code-block:: json

    {"schema": 1, "kind": "bench-series", "scenario": "pd-scaling",
     "environment": {"python": "...", "numpy": "...",
                     "calibration_seconds": 0.041, ...},
     "series": [{"n": 25, "m": 1, "wall_time": 0.0021, ...}, ...]}

Two grids per scenario: the ``full`` grid tracked in
``benchmarks/results/`` (and frozen as the committed baseline under
``benchmarks/baselines/``), and a reduced ``smoke`` grid cheap enough
for CI. The baseline gate matches points by their identity keys
(everything except the measured fields) and fails on any point slower
than ``factor`` × baseline — after rescaling by the two environments'
``calibration_seconds`` (a fixed numpy+Python workload timed at emit
time), so a faster or slower CI machine does not masquerade as a code
change.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

import numpy as np

from ..errors import InvalidParameterError

if TYPE_CHECKING:
    from ..model.job import Instance

__all__ = [
    "SCENARIOS",
    "run_scenario",
    "write_result",
    "load_result",
    "compare_to_baseline",
    "environment_stamp",
]

#: Fields that are measurements, not point identity.
_MEASURE_KEYS = frozenset(
    {
        "wall_time",
        "run_time",
        "certify_time",
        "cost",
        "bytes_per_record",
        "records_per_s",
    }
)


@dataclass(frozen=True)
class BenchScenario:
    """One named perf scenario: a point grid and a point runner."""

    name: str
    summary: str
    full: tuple[Mapping[str, Any], ...]
    smoke: tuple[Mapping[str, Any], ...]
    run_point: Callable[[Mapping[str, Any]], dict]

    def points(self, grid: str) -> tuple[Mapping[str, Any], ...]:
        if grid == "full":
            return self.full
        if grid == "smoke":
            return self.smoke
        raise InvalidParameterError(
            f"grid must be 'full' or 'smoke', got {grid!r}"
        )


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


# ----------------------------------------------------------------------
# Scenario runners
# ----------------------------------------------------------------------
def _pd_point(point: Mapping[str, Any]) -> dict:
    from ..analysis.certificates import dual_certificate
    from ..core.pd import run_pd
    from ..workloads import poisson_instance

    n, m = int(point["n"]), int(point["m"])
    instance = poisson_instance(n, m=m, alpha=3.0, seed=0)
    t_run, result = _timed(lambda: run_pd(instance))
    t_cert, cert = _timed(lambda: dual_certificate(result))
    if not cert.holds:  # pragma: no cover - a failing bound is a bug
        raise AssertionError(f"certificate violated at n={n}, m={m}")
    return {
        "n": n,
        "m": m,
        "wall_time": t_run + t_cert,
        "run_time": t_run,
        "certify_time": t_cert,
        "cost": result.cost,
    }


def _classical_instance(n: int, seed: int = 0) -> "Instance":
    from ..model.job import Instance
    from ..workloads import poisson_instance

    base = poisson_instance(n, m=1, alpha=3.0, seed=seed)
    return Instance.classical(
        [(j.release, j.deadline, j.workload) for j in base.jobs],
        m=1,
        alpha=3.0,
    )


def _oa_point(point: Mapping[str, Any]) -> dict:
    from ..classical.oa import run_oa

    n = int(point["n"])
    instance = _classical_instance(n)
    wall, result = _timed(lambda: run_oa(instance))
    return {"n": n, "m": 1, "wall_time": wall, "cost": result.cost}


def _yds_point(point: Mapping[str, Any]) -> dict:
    from ..classical.yds import yds

    n = int(point["n"])
    instance = _classical_instance(n)
    wall, result = _timed(lambda: yds(instance))
    return {"n": n, "m": 1, "wall_time": wall, "cost": result.energy}


def _grid_refine_point(point: Mapping[str, Any]) -> dict:
    from ..model.intervals import Grid

    n = int(point["n"])
    rounds = 200
    boundaries = np.linspace(0.0, float(n), n + 1)
    rng = np.random.default_rng(0)
    cuts = rng.uniform(0.05, float(n) - 0.05, size=(rounds, 2))
    grid = Grid(boundaries)

    def exercise() -> None:
        for row in cuts:
            grid.refine(row.tolist())

    wall, _ = _timed(exercise)
    return {"n": n, "m": 1, "wall_time": wall, "rounds": rounds}


def _cache_point(point: Mapping[str, Any]) -> dict:
    import tempfile

    from ..engine.cache import open_cache

    backend = str(point["backend"])
    ops = int(point["n"])
    payload = {
        "kind": "run-record",
        "algorithm": "bench",
        "wall_time": 0.5,
        "body": "x" * 512,
    }
    with tempfile.TemporaryDirectory() as root:
        path = {
            "dir": root,
            "sqlite": os.path.join(root, "bench.db"),
            "memory": None,
        }[backend]
        cache = open_cache(path, backend)
        try:

            def exercise() -> None:
                for i in range(ops):
                    key = f"bench-{i:06d}"
                    cache.put(key, payload)
                    if cache.get(key) is None:  # pragma: no cover
                        raise AssertionError("cache dropped a fresh put")

            wall, _ = _timed(exercise)
        finally:
            cache.close()
    return {"n": ops, "m": 1, "backend": backend, "wall_time": wall}


def _pd_stream_point(point: Mapping[str, Any]) -> dict:
    """PD at 10k–1M jobs: SoA generation, epoch batching, streaming cost.

    The dense ``(n, N)`` schedule matrix a ``finish()`` would build is
    tens of gigabytes at a million jobs — this point exercises exactly
    the path that avoids it: columnar ``slotted`` generation, the
    arrival-epoch batched main loop (:mod:`repro.perf.epochs` — the
    bit-parity-tested fast twin of the per-arrival loop), and
    :meth:`PDScheduler.streaming_cost` off the live stores. The ``cost``
    field is byte-identical to what the per-arrival loop produces, so
    baselines emitted before the epoch path still match on identity.
    """
    from ..core.pd import PDScheduler
    from ..workloads import slotted_instance

    n, m = int(point["n"]), int(point["m"])
    instance = slotted_instance(n, slots=1000, m=m, alpha=3.0, seed=0)
    arrays = instance.sorted_by_release().arrays

    def exercise() -> float:
        sched = PDScheduler(m=m, alpha=3.0, batch="epoch")
        sched.arrive_many(arrays)
        return sched.streaming_cost()

    wall, cost = _timed(exercise)
    return {"n": n, "m": m, "wall_time": wall, "cost": float(cost)}


def _oa_stream_point(point: Mapping[str, Any]) -> dict:
    """Incremental OA at 100k jobs: lazy-prefix replans, epoch bookkeeping."""
    from ..classical.oa import oa_segments
    from ..model.power import PolynomialPower
    from ..workloads import slotted_instance

    n = int(point["n"])
    instance = slotted_instance(n, slots=2000, m=1, alpha=3.0, seed=0)
    wall, out = _timed(lambda: oa_segments(instance, batch="epoch"))
    _, executed = out
    power = PolynomialPower(3.0)
    energy = sum(
        (hi - lo) * power(speed) for _, lo, hi, speed in executed
    )
    return {"n": n, "m": 1, "wall_time": wall, "cost": float(energy)}


#: One evaluated record payload per size, shared across the repeat
#: measurements of a transport point (the payload is identical every
#: evaluation; rebuilding it would time PD, not the transport).
_TRANSPORT_PAYLOADS: dict[int, dict] = {}


def _transport_point(point: Mapping[str, Any]) -> dict:
    """Record transport round trip: wire encode + decode, bytes and time.

    ``bytes_per_record`` is what actually crosses the pool's result
    pipe: the full pickled payload for the ``pickle`` transport, a
    constant-size ticket for ``shm`` (the payload bytes travel through
    a shared-memory segment instead).
    """
    import pickle

    from ..engine import transport as tr
    from ..engine.runner import RunRequest, evaluate_request
    from ..workloads import slotted_instance

    n = int(point["n"])
    mode = str(point["transport"])
    # Enough rounds that the point takes ~1s: a 0.1s point is pure
    # scheduler noise when the smoke grid runs it right after a 13s
    # PD scenario, and the 2x gate then flakes.
    rounds = 25
    payload = _TRANSPORT_PAYLOADS.get(n)
    if payload is None:
        instance = slotted_instance(n, slots=400, m=4, alpha=3.0, seed=0)
        payload = evaluate_request(RunRequest("pd", instance))
        _TRANSPORT_PAYLOADS[n] = payload

    def exercise() -> dict:
        out = payload
        for _ in range(rounds):
            # The pool's result queue pickles whatever wire it carries —
            # simulate that hop so the pickle wire doesn't measure as an
            # in-process no-op.
            wire = tr.encode_payload(payload, mode)
            piped = pickle.loads(
                pickle.dumps(wire, protocol=pickle.HIGHEST_PROTOCOL)
            )
            out = tr.decode_wire(piped)
        return out

    wall, out = _timed(exercise)
    if out["cost"] != payload["cost"]:  # pragma: no cover - parity guard
        raise AssertionError("transport round trip altered the record")
    wire = tr.encode_payload(payload, mode)
    nbytes = tr.wire_bytes(wire)
    if wire[0] == "shm":
        tr.decode_wire(wire)  # attach-and-unlink releases the segment
    return {
        "n": n,
        "m": 4,
        "transport": mode,
        "rounds": rounds,
        "wall_time": wall,
        "bytes_per_record": nbytes,
    }


def _fabric_point(point: Mapping[str, Any]) -> dict:
    """HTTP cache fabric throughput against a live in-process server.

    Every point boots a fresh :class:`CacheServer` over an unbounded
    ``MemoryCache`` and drives it through ``HttpCache`` /
    ``HttpClaimTable`` exactly as a distributed sweep would. The
    ``client`` axis is the experiment: ``pooled`` is the production
    configuration (keep-alive connection pool, deflate negotiation,
    batched claim leases), ``per-request`` re-dials a fresh TCP
    connection for every request and claims one lease at a time — the
    pre-pool fabric, kept measurable as the speedup denominator.

    Ops: ``steal-hits`` drains a fully pre-seeded claim sweep (pure
    fabric round trips, zero compute), ``steal-mixed`` pre-seeds half
    the cells (hit/miss interleave through the pipelined loop), and
    ``bulk`` pushes ``put_many``/``get_many`` batches of ``size``-byte
    payloads. ``records_per_s`` is the figure of merit; request
    construction and cache seeding happen outside the timed region.
    """
    from ..engine.cache import MemoryCache
    from ..engine.remote import HttpCache, HttpClaimTable
    from ..engine.runner import (
        BatchRunner,
        RunRequest,
        evaluate_request,
        request_key,
    )
    from ..io.server import CacheServer
    from ..workloads import poisson_instance

    op = str(point["op"])
    client = str(point["client"])
    n = int(point["n"])
    pooled = client == "pooled"

    def open_client(url: str) -> "HttpCache":
        if pooled:
            return HttpCache(url)
        return HttpCache(url, keep_alive=False, compress=False, pool_size=1)

    server = CacheServer(MemoryCache(max_entries=None)).start()
    try:
        if op == "bulk":
            size = int(point["size"])
            entries = {
                f"cell-{i:06d}": {"kind": "bench", "body": "x" * size}
                for i in range(n)
            }
            cache = open_client(server.url)
            try:

                def exercise() -> None:
                    cache.put_many(entries)
                    found = cache.get_many(list(entries))
                    if len(found) != n:  # pragma: no cover - lost update
                        raise AssertionError("bulk round trip lost entries")

                wall, _ = _timed(exercise)
            finally:
                cache.close()
            ops_done = 2 * n  # n puts + n gets
            return {
                "n": n,
                "m": 1,
                "op": op,
                "client": client,
                "size": size,
                "wall_time": wall,
                "records_per_s": ops_done / wall,
            }

        workers = int(point.get("workers", 1))
        requests = [
            RunRequest(
                "pd",
                poisson_instance(4, m=1, alpha=3.0, seed=i),
                tag={"cell": i},
            )
            for i in range(n)
        ]
        payload = evaluate_request(requests[0])
        seeded = n if op == "steal-hits" else n // 2
        for request in requests[:seeded]:
            server.cache.put(
                request_key(request.algorithm, request.instance), payload
            )
        cache = open_client(server.url)
        claims = HttpClaimTable(
            server.url,
            "bench-fabric",
            n,
            lease_ttl=300.0,
            keep_alive=pooled,
        )
        runner = BatchRunner(
            workers=workers,
            cache=cache,
            claim_batch=16 if pooled else 1,
        )
        try:
            wall, pairs = _timed(
                lambda: runner.run_stolen(requests, claims)
            )
        finally:
            claims.close()
            cache.close()
        if len(pairs) != n:  # pragma: no cover - lost cells are a bug
            raise AssertionError(
                f"stolen sweep returned {len(pairs)} of {n} cells"
            )
        return {
            "n": n,
            "m": 1,
            "op": op,
            "client": client,
            "workers": workers,
            "wall_time": wall,
            "records_per_s": n / wall,
        }
    finally:
        server.stop()


def _points(**axes: Iterable) -> tuple[dict, ...]:
    """Cartesian grid helper: ``_points(n=[1,2], m=[1])``."""
    out: list[dict] = [{}]
    for key, values in axes.items():
        out = [{**point, key: value} for point in out for value in values]
    return tuple(out)


SCENARIOS: dict[str, BenchScenario] = {
    scenario.name: scenario
    for scenario in (
        BenchScenario(
            name="pd-scaling",
            summary="full PD pipeline (run + Theorem 3 certificate)",
            full=_points(n=[25, 50, 100, 200, 500, 1000, 2000], m=[1, 4]),
            smoke=_points(n=[25, 50, 100], m=[1]),
            run_point=_pd_point,
        ),
        BenchScenario(
            name="oa-scaling",
            summary="Optimal Available simulation (classical instances)",
            full=_points(n=[25, 50, 100, 200, 400, 800]),
            smoke=_points(n=[25, 50]),
            run_point=_oa_point,
        ),
        BenchScenario(
            name="yds-scaling",
            summary="YDS offline optimum (vectorized critical scan)",
            full=_points(n=[25, 50, 100, 200, 400]),
            smoke=_points(n=[25, 50]),
            run_point=_yds_point,
        ),
        BenchScenario(
            name="grid-refine",
            summary="micro: 200 two-point refinements of an N-interval grid",
            full=_points(n=[100, 1000, 5000, 20000]),
            smoke=_points(n=[100, 1000]),
            run_point=_grid_refine_point,
        ),
        BenchScenario(
            name="cache-micro",
            summary="micro: put+get round trips per cache backend",
            full=_points(n=[300], backend=["dir", "sqlite", "memory"]),
            smoke=_points(n=[300], backend=["dir", "sqlite", "memory"]),
            run_point=_cache_point,
        ),
        BenchScenario(
            name="pd-1m",
            summary="PD at 10k-1M jobs: SoA instances, epoch batching, "
            "streaming cost",
            # The 10k point appears in both grids so the smoke run's
            # fastest point is still matched (and gated) against the
            # committed full-grid baseline.
            full=_points(n=[10_000, 100_000, 1_000_000], m=[4]),
            smoke=_points(n=[10_000, 100_000], m=[4]),
            run_point=_pd_stream_point,
        ),
        BenchScenario(
            name="oa-100k",
            summary="incremental OA at 100k jobs (lazy-prefix replans)",
            full=_points(n=[25_000, 100_000]),
            smoke=_points(n=[100_000]),
            run_point=_oa_stream_point,
        ),
        BenchScenario(
            name="fabric-throughput",
            summary="HTTP fabric records/s: pooled keep-alive vs per-request",
            full=_points(
                op=["steal-hits", "steal-mixed"],
                client=["pooled", "per-request"],
                n=[240],
                workers=[1],
            )
            + _points(
                op=["steal-hits"], client=["pooled"], n=[240], workers=[4]
            )
            + _points(
                op=["bulk"],
                client=["pooled", "per-request"],
                n=[300],
                size=[64, 4096],
            ),
            # Smoke is an identity subset of full, so the calibrated
            # baseline gate actually matches (and checks) every point.
            smoke=_points(
                op=["steal-hits"],
                client=["pooled", "per-request"],
                n=[240],
                workers=[1],
            )
            + _points(
                op=["bulk"],
                client=["pooled", "per-request"],
                n=[300],
                size=[4096],
            ),
            run_point=_fabric_point,
        ),
        BenchScenario(
            name="transport-micro",
            summary="micro: record wire round trip, pickle vs shared memory",
            full=_points(n=[10_000], transport=["pickle", "shm"]),
            smoke=_points(n=[10_000], transport=["pickle", "shm"]),
            run_point=_transport_point,
        ),
    )
}


# ----------------------------------------------------------------------
# Environment stamp & calibration
# ----------------------------------------------------------------------
def _calibration_seconds() -> float:
    """Time a fixed numpy + Python workload (machine speed yardstick).

    The baseline gate divides measured wall times by the ratio of the
    two environments' calibration values, so a CI runner half as fast
    as the baseline machine is not reported as a 2x regression.
    """
    rng = np.random.default_rng(12345)
    data = rng.random(200_000)
    start = time.perf_counter()
    acc = 0.0
    for _ in range(5):
        acc += float(np.sort(data)[::-1].cumsum()[-1])
        acc += sum(float(v) for v in data[:20_000])
    if not math.isfinite(acc):  # pragma: no cover - keeps the loop live
        raise AssertionError("calibration overflow")
    return time.perf_counter() - start


def environment_stamp() -> dict:
    """Machine-readable provenance of a bench run."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "calibration_seconds": round(_calibration_seconds(), 6),
    }


# ----------------------------------------------------------------------
# Running / persisting / comparing
# ----------------------------------------------------------------------
def run_scenario(
    name: str,
    *,
    grid: str = "full",
    progress: Callable[[str], None] | None = None,
    profile: bool = False,
) -> dict:
    """Run one scenario and return its BENCH payload.

    With ``profile=True`` every point gets one *extra* run under
    :mod:`cProfile` and the payload carries a ``profiles`` list (one
    top-25-by-cumulative-time table per point). The timed measurements
    stay unprofiled — tracing slows points several-fold, so a profiled
    wall time would gate against the wrong number; the CLI writes the
    tables to a ``.profile.txt`` sibling of the BENCH json instead of
    committing them into the series.
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise InvalidParameterError(
            f"unknown bench scenario {name!r}; "
            f"available: {', '.join(sorted(SCENARIOS))}"
        )
    series = []
    profiles: list[dict] = []
    for point in scenario.points(grid):
        row = scenario.run_point(point)
        # Millisecond-scale points are one scheduler stall away from a
        # spurious 2x "regression": re-measure fast points and keep the
        # best run (the minimum is the least-noise estimator for wall
        # time). Slow points stay single-shot — their signal dwarfs the
        # noise and repeats would be expensive.
        repeats = 0
        while row["wall_time"] < 0.25 and repeats < 2:
            candidate = scenario.run_point(point)
            repeats += 1
            if candidate["wall_time"] < row["wall_time"]:
                row = candidate
        series.append(row)
        ident = " ".join(
            f"{k}={row[k]}" for k in row if k not in _MEASURE_KEYS
        )
        if progress is not None:
            progress(f"[{name}] {ident}: {row['wall_time']:.4f}s")
        if profile:
            import cProfile
            import io
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            scenario.run_point(point)
            profiler.disable()
            buffer = io.StringIO()
            stats = pstats.Stats(profiler, stream=buffer)
            stats.sort_stats("cumulative").print_stats(25)
            profiles.append({"point": ident, "table": buffer.getvalue()})
            if progress is not None:
                progress(f"[{name}] {ident}: profiled")
    payload = {
        "schema": 1,
        "kind": "bench-series",
        "scenario": name,
        "grid": grid,
        "environment": environment_stamp(),
        "series": series,
    }
    if profile:
        payload["profiles"] = profiles
    return payload


def write_result(
    payload: dict, out_dir: str, *, name: str | None = None
) -> str:
    """Persist a BENCH payload as ``<out_dir>/BENCH_<name>.json``."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(
        out_dir, f"BENCH_{name or payload['scenario']}.json"
    )
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_result(path: str) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("kind") != "bench-series":
        raise InvalidParameterError(
            f"{path} is not a BENCH series (kind={payload.get('kind')!r})"
        )
    return payload


def _identity(row: Mapping[str, Any]) -> tuple:
    return tuple(
        sorted((k, v) for k, v in row.items() if k not in _MEASURE_KEYS)
    )


def compare_to_baseline(
    current: dict, baseline: dict, *, factor: float = 2.0
) -> list[str]:
    """Regression report: current points slower than ``factor`` x baseline.

    Points are matched by identity keys; points present on one side
    only are ignored (grids may differ — CI smoke vs committed full).
    Wall times are rescaled by the environments' calibration ratio
    before the factor test.
    """
    if factor <= 1.0:
        raise InvalidParameterError(f"factor must be > 1, got {factor}")
    cal_current = float(
        current.get("environment", {}).get("calibration_seconds") or 0.0
    )
    cal_baseline = float(
        baseline.get("environment", {}).get("calibration_seconds") or 0.0
    )
    scale = (
        cal_current / cal_baseline
        if cal_current > 0.0 and cal_baseline > 0.0
        else 1.0
    )
    by_identity = {
        _identity(row): row for row in baseline.get("series", [])
    }
    regressions: list[str] = []
    for row in current.get("series", []):
        base = by_identity.get(_identity(row))
        if base is None:
            continue
        budget = float(base["wall_time"]) * factor * scale
        measured = float(row["wall_time"])
        if measured > budget:
            ident = " ".join(
                f"{k}={row[k]}" for k in row if k not in _MEASURE_KEYS
            )
            regressions.append(
                f"{current.get('scenario', '?')} {ident}: "
                f"{measured:.4f}s > {factor:g}x baseline "
                f"{float(base['wall_time']):.4f}s "
                f"(machine-scaled budget {budget:.4f}s)"
            )
    return regressions


def main_check(
    results_dir: str, baseline_dir: str, *, factor: float = 2.0
) -> list[str]:
    """Compare every BENCH file in ``results_dir`` against its baseline."""
    regressions: list[str] = []
    for entry in sorted(os.listdir(results_dir)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        base_path = os.path.join(baseline_dir, entry)
        if not os.path.exists(base_path):
            continue
        regressions.extend(
            compare_to_baseline(
                load_result(os.path.join(results_dir, entry)),
                load_result(base_path),
                factor=factor,
            )
        )
    return regressions
