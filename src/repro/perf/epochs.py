"""Arrival-epoch batched execution of the primal-dual scheduler.

The online loop of :class:`~repro.core.pd.PDScheduler` is faithful but
*literal*: one Python ``arrive()`` per job — Job materialization, a
fresh-point probe, a ``covering()`` walk, a
:class:`~repro.perf.kernels.WindowKernel` build, and a decision object,
per arrival. At the million-job tier the interpreter overhead of that
choreography dwarfs the actual water-filling arithmetic.

This module replays the identical per-arrival semantics in **epochs**:
blocks of consecutive arrivals consumed straight off the
:class:`~repro.model.job_arrays.JobArrays` columns, with the per-job
bookkeeping hoisted into batched numpy passes:

* **release-order check** — one ``np.maximum.accumulate`` running-max
  pass per block (same tolerance, same error message, raised at the
  same prefix position as the sequential loop);
* **refinement scan** — the :meth:`~repro.model.intervals.Grid.fresh_points`
  nearness test, vectorized over every window endpoint in the block.
  Blocks are *split at the first refining arrival*: that job runs the
  full scalar path (grid refinement included), everything before it is
  batched against a grid that provably does not change under it. In
  steady state (the grid has converged to the workload's breakpoints)
  blocks run at full width;
* **window lookup** — one vectorized ``np.searchsorted`` for every
  window endpoint in the block, replicating the exact
  ``_boundary_index`` tolerance semantics of ``Grid.covering``;
* **cheap-reject pre-screen** — jobs whose price cap cannot open *any*
  interval of their window are rejected en masse. Per interval the
  exact opening speed is ``IntervalLoads.open_speed`` (the m-machine
  water level); the windowed minimum over the whole block is one
  ``np.minimum.reduceat``. Because accepted work only ever *raises*
  water levels within a refinement-free epoch, the block-start envelope
  stays a valid lower bound throughout the block. The screen is
  advisory: every screened job is *confirmed* by an exact scalar pass
  against the live stores (the same ``s_cap`` scalar and the same
  per-interval ``target*(m-d) - suffix[d]`` query the reference kernel
  evaluates), so a screen error can only reroute a job to the slower
  path, never change its decision;
* **deferred suffix maintenance** — accepts insert with
  :meth:`~repro.perf.kernels.IntervalLoads.insert_deferred` and suffix
  sums are rebuilt lazily, right before the next query that reads them,
  coalescing rebuilds across the epoch (the flushed suffix is a pure
  function of the final loads, so coalescing is bit-invisible);
* **columnar decisions** — accepted/lam/speed/planned-work land in
  per-block columns; ``JobDecision``/``Instance`` objects materialize
  once, in ``finish()``.

A job that survives the screen runs the *reference* scalar water-fill
(:func:`repro.core.waterfill.waterfill_job` over a ``WindowKernel`` of
the live stores) — the same floats in the same order — so decisions,
load stores, planned loads, certificates, record payloads, and cache
keys are byte-identical to the per-arrival path. The differential suite
(``tests/test_epochs.py``) asserts exactly that, and ``repro lint``
pins every public name here to its reference twin
(:data:`repro.perf.reference.PARITY_PAIRS`).
"""

from __future__ import annotations

import contextvars
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from ..core.waterfill import waterfill_job
from ..errors import InvalidParameterError
from ..model.intervals import _TIME_EPS
from ..model.power import PolynomialPower
from .kernels import WindowKernel

__all__ = [
    "DEFAULT_EPOCH_SIZE",
    "arrive_epochs",
    "batch_mode",
    "current_batch_mode",
]

#: Default arrival-epoch block length. Large enough to amortize the
#: per-block numpy passes over thousands of arrivals, small enough that
#: the block-start screen envelope stays tight (levels only rise within
#: a block, so an over-long epoch degrades the screen hit rate, never
#: correctness).
DEFAULT_EPOCH_SIZE = 2048

#: Relative safety margin of the (approximate, vectorized) stage-1
#: screen against the exact scalar confirmation. Purely advisory — both
#: kinds of stage-1 error merely reroute a job between the fast and the
#: full path.
_SCREEN_MARGIN = 1e-9

_BATCH_MODES = ("arrival", "epoch")

_MODE: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_batch_mode", default="arrival"
)


def current_batch_mode() -> str:
    """The ambient execution mode ``run_pd``/``run_oa`` default to."""
    return _MODE.get()


@contextmanager
def batch_mode(mode: str | None) -> Iterator[None]:
    """Context manager selecting the ambient batch execution mode.

    ``None`` is a no-op (keeps the surrounding mode) so callers can
    thread an optional setting through unconditionally. The mode is an
    *execution* option: it changes how results are computed, never what
    they are, and therefore deliberately stays out of
    :func:`repro.engine.runner.request_key` — a cached record answers
    requests from either mode.
    """
    if mode is None:
        yield
        return
    if mode not in _BATCH_MODES:
        raise InvalidParameterError(
            f"batch must be one of {_BATCH_MODES}, got {mode!r}"
        )
    token = _MODE.set(mode)
    try:
        yield
    finally:
        _MODE.reset(token)


def arrive_epochs(scheduler, arrays, *, epoch_size: int = DEFAULT_EPOCH_SIZE) -> None:
    """Feed every job of ``arrays`` to ``scheduler`` in vectorized epochs.

    Mutates ``scheduler`` (a :class:`~repro.core.pd.PDScheduler`) into
    exactly the state the sequential ``for i: scheduler.arrive(arrays.job(i))``
    loop would produce — same grid, same stores, same planned loads,
    same decisions — while storing jobs and decisions columnar. The
    scheduler must not have been fed through ``arrive()`` before (the
    two storage layouts do not mix).
    """
    if epoch_size < 1:
        raise InvalidParameterError(
            f"epoch_size must be >= 1, got {epoch_size}"
        )
    if scheduler._jobs:
        raise InvalidParameterError(
            "cannot mix epoch-batched arrivals with arrive(); this "
            "scheduler already holds per-arrival jobs"
        )
    n = arrays.n
    i = 0
    while i < n:
        i = _process_block(scheduler, arrays, i, min(i + epoch_size, n))


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _near_boundary(b: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Vectorized ``Grid.fresh_points`` nearness test, one point at a time.

    ``True`` where the point snaps to an existing boundary — the exact
    per-point condition of the scalar classifier (searchsorted-left
    neighbours, absolute ``_TIME_EPS`` tolerance).
    """
    idx = np.searchsorted(b, points, side="left")
    size = b.size
    near = np.zeros(points.shape, dtype=bool)
    has_right = idx < size
    near[has_right] = (
        b[idx[has_right]] - points[has_right] <= _TIME_EPS
    )
    has_left = idx > 0
    near[has_left] |= (
        points[has_left] - b[idx[has_left] - 1] <= _TIME_EPS
    )
    return near


def _refresh_opens(sched) -> np.ndarray:
    """The per-interval opening-speed envelope, refreshed incrementally.

    ``opens[k]`` is the exact speed below which interval ``k`` absorbs
    zero load at the *block-start* state; ``opens[N]`` is a ``+inf``
    sentinel so a window's ``reduceat`` endpoint may sit one past the
    last interval. Only intervals dirtied since the last block are
    recomputed (their deferred suffixes flushed first); a grid change
    drops the cache entirely.
    """
    states = sched._states
    size = len(states)
    m = sched.m
    lens = sched._length_list()
    opens = sched._opens
    dirty = sched._dirty_suffix
    if opens is None or opens.size != size + 1:
        opens = np.empty(size + 1, dtype=np.float64)
        opens[size] = np.inf
        stale = range(size)
    else:
        stale = sched._stale_open
    for k in stale:
        state = states[k]
        if k in dirty:
            state.flush_suffix()
        opens[k] = state.open_speed(m, lens[k])
    dirty.clear()
    sched._stale_open.clear()
    sched._opens = opens
    return opens


def _scalar_arrive(sched, arrays, i: int) -> None:
    """One arrival through the full scalar path (grid refinement included).

    Used for the grid-bootstrapping first job and for every arrival
    whose window endpoints do not snap to the current grid. Identical
    to ``PDScheduler.arrive`` minus Job/decision object churn — the
    release-order check already ran vectorized for the enclosing block.
    """
    release = float(arrays.releases[i])
    deadline = float(arrays.deadlines[i])
    workload = float(arrays.workloads[i])
    value = float(arrays.values[i])
    if release > sched._last_release:
        sched._last_release = release

    sched._flush_suffixes()
    sched._stale_open.clear()
    sched._refine_grid(release, deadline)
    grid = sched._grid
    ks = grid.covering(release, deadline)
    lengths = grid.lengths
    kernel = WindowKernel(
        [sched._states[k] for k in ks],
        [float(lengths[k]) for k in ks],
        sched.m,
    )
    outcome = waterfill_job(
        kernel,
        workload=workload,
        value=value,
        delta=sched.delta,
        power=sched.power,
    )
    job_id = sched._count
    loads = outcome.loads
    accepted = outcome.accepted
    for offset, k in enumerate(ks):
        z = float(loads[offset])
        if z == 0.0:
            continue
        if accepted:
            sched._states[k].insert(job_id, z)
            if sched._opens is not None:
                sched._stale_open.add(k)
        sched._planned[k].append((job_id, z))
    sched._chunks.append(
        (
            arrays.releases[i : i + 1],
            arrays.deadlines[i : i + 1],
            arrays.workloads[i : i + 1],
            arrays.values[i : i + 1],
            [accepted],
            [outcome.lam],
            [outcome.speed],
            [outcome.planned_work],
        )
    )
    sched._count = job_id + 1


def _process_block(sched, arrays, lo: int, hi: int) -> int:
    """Process arrivals ``[lo, hi)``; return the next unprocessed index.

    May stop early: at a release-order violation (after processing the
    valid prefix, like the sequential loop would) or at the first
    arrival that refines the grid (which runs the scalar path so every
    later job in the block sees the refined grid).
    """
    releases = arrays.releases
    r = releases[lo:hi]
    prev = sched._last_release
    runmax = np.maximum.accumulate(np.concatenate(((prev,), r)))
    bad = r < runmax[:-1] - 1e-12
    if bad.any():
        stop = int(np.argmax(bad))
        j = lo
        while j < lo + stop:
            j = _process_block(sched, arrays, j, lo + stop)
        raise InvalidParameterError(
            f"jobs must arrive in release order: got release "
            f"{float(r[stop])} after {float(runmax[stop])}"
        )

    if sched._grid is None:
        _scalar_arrive(sched, arrays, lo)
        return lo + 1

    grid = sched._grid
    b = grid.boundaries
    d = arrays.deadlines[lo:hi]
    ok = _near_boundary(b, r) & _near_boundary(b, d)
    if not bool(ok.all()):
        cut = lo + int(np.argmin(ok))
        if cut == lo:
            _scalar_arrive(sched, arrays, lo)
            return lo + 1
        hi = cut
        r = r[: hi - lo]
        d = d[: hi - lo]
    cnt = hi - lo
    w = arrays.workloads[lo:hi]
    v = arrays.values[lo:hi]
    sched._last_release = float(runmax[cnt])

    # Batched covering: the exact ``_boundary_index`` computation for
    # every window endpoint at once. The nearness test above implies
    # alignment under the (looser) covering tolerance, but any
    # stragglers are simply routed through ``grid.covering`` below for
    # the historical behavior.
    i_idx = np.searchsorted(b, r - _TIME_EPS, side="left")
    j_idx = np.searchsorted(b, d - _TIME_EPS, side="left")
    size = b.size
    safe_i = np.minimum(i_idx, size - 1)
    safe_j = np.minimum(j_idx, size - 1)
    aligned = (
        (i_idx < size)
        & (np.abs(b[safe_i] - r) <= _TIME_EPS * np.maximum(1.0, np.abs(r)) + _TIME_EPS)
        & (j_idx < size)
        & (np.abs(b[safe_j] - d) <= _TIME_EPS * np.maximum(1.0, np.abs(d)) + _TIME_EPS)
    )

    # Stage-1 screen: exact per-interval opening envelope (frozen at
    # block start), approximate vectorized price caps. Candidates get an
    # exact scalar confirmation below; everyone else takes the full path.
    opens = _refresh_opens(sched)
    delta = sched.delta
    power = sched.power
    nonempty = j_idx > i_idx
    if isinstance(power, PolynomialPower):
        alpha = power.alpha
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            marg = v / (delta * w)
            caps = np.exp(np.log(marg / alpha) / (alpha - 1.0))
        caps = np.where(marg > 0.0, caps, 0.0)
        pairs = np.empty(2 * cnt, dtype=np.intp)
        pairs[0::2] = np.where(nonempty, i_idx, 0)
        pairs[1::2] = np.where(nonempty, j_idx, 1)
        wmin = np.minimum.reduceat(opens, pairs)[0::2]
        candidate = aligned & nonempty & (caps * (1.0 + _SCREEN_MARGIN) < wmin)
    else:
        # No vectorized cap for custom power functions: attempt the
        # exact confirmation on every aligned job instead.
        candidate = aligned & nonempty

    states = sched._states
    planned = sched._planned
    len_list = sched._length_list()
    m = sched.m
    dirty = sched._dirty_suffix
    stale = sched._stale_open
    derivative_inverse = power.derivative_inverse
    base_id = sched._count

    rl = r.tolist()
    dl = d.tolist()
    wl = w.tolist()
    vl = v.tolist()
    il = i_idx.tolist()
    jl = j_idx.tolist()
    cand = candidate.tolist()
    algn = aligned.tolist()
    acc: list[bool] = []
    lam: list[float] = []
    spd: list[float] = []
    pw: list[float] = []

    for t in range(cnt):
        value = vl[t]
        workload = wl[t]
        i0 = il[t]
        j0 = jl[t]
        if cand[t]:
            # Exact zero-load confirmation against the *live* stores:
            # the same scalar cap and the same per-interval water-level
            # query the reference kernel would evaluate at the cap. All
            # zero means the reference outcome is fully determined
            # (reject at value, nothing placed, no state mutation).
            s_cap = derivative_inverse(value / (delta * workload))
            zero = True
            if s_cap > 0.0:
                for k in range(i0, j0):
                    state = states[k]
                    if k in dirty:
                        state.flush_suffix()
                        dirty.discard(k)
                    target = s_cap * len_list[k]
                    dd = bisect_left(state.neg, -target)
                    if dd < m and target * (m - dd) - state.suffix[dd] > 0.0:
                        zero = False
                        break
            if zero:
                acc.append(False)
                lam.append(value)
                spd.append(s_cap)
                pw.append(0.0)
                continue
        # Full scalar water-fill against the live stores (reference
        # floats in reference order).
        if algn[t]:
            ks = range(i0, j0)
        else:  # pragma: no cover - near implies aligned; insurance only
            ks = grid.covering(rl[t], dl[t])
            i0, j0 = ks.start, ks.stop
        if dirty:
            for k in ks:
                if k in dirty:
                    states[k].flush_suffix()
                    dirty.discard(k)
        kernel = WindowKernel(states[i0:j0], len_list[i0:j0], m)
        outcome = waterfill_job(
            kernel,
            workload=workload,
            value=value,
            delta=delta,
            power=power,
        )
        loads = outcome.loads
        accepted = outcome.accepted
        job_id = base_id + t
        for offset in range(j0 - i0):
            z = float(loads[offset])
            if z == 0.0:
                continue
            k = i0 + offset
            if accepted:
                states[k].insert_deferred(job_id, z)
                dirty.add(k)
                stale.add(k)
            planned[k].append((job_id, z))
        acc.append(accepted)
        lam.append(outcome.lam)
        spd.append(outcome.speed)
        pw.append(outcome.planned_work)

    sched._chunks.append((r, d, w, v, acc, lam, spd, pw))
    sched._count = base_id + cnt
    return hi
