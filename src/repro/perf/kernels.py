"""Incremental interval-load stores and the batched window kernel.

The primal-dual water-filling step asks one question, thousands of
times per run: *how much new load can each atomic interval of a job's
window absorb at a candidate speed?* The closed form
(:func:`repro.chen.interval_power.max_load_at_speed`) needs each
interval's loads **descending-sorted with suffix sums** — and the
historical implementation rebuilt that cache from the full ``(n, N)``
load matrix on every arrival: an O(n) sort-and-scan per interval per
job, which is exactly why the seed topped out around 200 jobs.

This module maintains the sorted structure *incrementally* across
arrivals instead:

* :class:`IntervalLoads` keeps one interval's positive loads in
  descending order inside a preallocated, grown-by-doubling array.
  Accepting a job is a sorted **insertion** (one C-level ``memmove``);
  splitting an interval on grid refinement is a **split-copy** (scale
  by the child fraction — order is preserved, so no re-sort); suffix
  sums are rebuilt with the exact accumulation order the reference
  path used, which keeps every query bit-identical.
* :class:`WindowKernel` freezes the stores of one job's window and
  answers ``total_at_speed`` / ``loads_at_speed`` for the bisection.
  Wide windows are evaluated in one batched numpy call (padded load
  matrix, vectorized water-level counts, sequential-``cumsum`` total so
  the sum order matches the reference's left-to-right Python sum);
  narrow windows — the common case, where numpy dispatch overhead
  would dominate — use a tight ``bisect``-based scalar loop over the
  same data. Both paths produce bit-identical floats.

Bit-parity notes (load-bearing, tested in ``tests/test_perf_kernels``):

* Dropping exact-zero loads is safe: descending sorts put zeros last,
  and trailing zeros contribute exact ``+0.0`` terms to the suffix
  cumsum, which cannot change any bit of any partial sum.
* Scaling a descending array by one positive fraction preserves order
  (monotone rounding), so a split-copy equals re-sorting the scaled
  column.
* ``numpy.cumsum`` accumulates strictly left to right — unlike
  ``numpy.sum``'s pairwise reduction — so ``cumsum(z)[-1]`` equals the
  reference's sequential Python ``sum`` bit for bit.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np

from ..errors import InvalidParameterError
from ..types import FloatArray

__all__ = ["IntervalLoads", "WindowKernel"]

#: Window width at which the batched numpy evaluation beats the scalar
#: loop (below it, per-call dispatch overhead dominates the ~K floats
#: of actual work). Both paths are bit-identical; this is pure tuning.
_VECTOR_MIN_INTERVALS = 32


class IntervalLoads:
    """One atomic interval's positive loads, sorted descending, live.

    Maintains three aligned structures: ``loads`` (descending),
    ``neg`` (``-loads``, ascending — the ``bisect`` key the water-level
    count uses), and ``ids`` (the owning job of each load). ``suffix``
    holds the suffix sums, ``suffix[d] == sum(loads[d:])``, rebuilt
    after every mutation with the same tail-first accumulation as
    :class:`repro.chen.interval_power.SortedLoads`.
    """

    __slots__ = ("loads", "neg", "ids", "suffix")

    def __init__(self) -> None:
        self.loads: list[float] = []
        self.neg: list[float] = []
        self.ids: list[int] = []
        self.suffix: list[float] = [0.0]

    def __len__(self) -> int:
        return len(self.loads)

    def insert(self, job_id: int, load: float) -> None:
        """Sorted insertion of one accepted load (O(p) memmove)."""
        if not (load > 0.0):
            raise InvalidParameterError(
                f"interval loads must be > 0, got {load}"
            )
        # bisect_right on the ascending negated key == stable descending
        # order: a new job (highest id) lands *after* equal loads, the
        # same tie order as the reference's stable argsort.
        pos = bisect_right(self.neg, -load)
        self.loads.insert(pos, load)
        self.neg.insert(pos, -load)
        self.ids.insert(pos, job_id)
        self._rebuild_suffix()

    def insert_deferred(self, job_id: int, load: float) -> None:
        """Sorted insertion with the suffix rebuild deferred.

        The epoch-batched execution layer accepts many jobs between two
        suffix reads, so rebuilding after every insert repeats O(p) work
        that the next insert throws away. This variant updates only the
        sorted ``loads``/``neg``/``ids`` triplet — identical to
        :meth:`insert`, insertion order and all — and leaves ``suffix``
        stale; the caller must invoke :meth:`flush_suffix` before the
        next suffix read. The flushed suffix is a pure function of the
        final ``loads`` list, so coalescing rebuilds cannot change a
        bit of any subsequent query.
        """
        if not (load > 0.0):
            raise InvalidParameterError(
                f"interval loads must be > 0, got {load}"
            )
        pos = bisect_right(self.neg, -load)
        self.loads.insert(pos, load)
        self.neg.insert(pos, -load)
        self.ids.insert(pos, job_id)

    def flush_suffix(self) -> None:
        """Rebuild the suffix sums after deferred insertions."""
        self._rebuild_suffix()

    def open_speed(self, m: int, length: float) -> float:
        """Smallest speed above which this interval absorbs new load.

        The water level at which ``max_load_at_speed`` turns positive is
        ``t* = min_d suffix[d] / (m - d)`` over the feasible occupancy
        counts ``d`` (a standard identity for the m-machine water-filling
        level: at the consistent ``d*`` the expression equals the level,
        and it is >= the level everywhere else). Any speed at or below
        ``t*/length`` yields exactly zero absorbed load — an *exact*
        threshold, used by the epoch pre-screen as a conservative gate
        (screen errors only reroute jobs, never change a decision).
        Requires a flushed suffix.
        """
        suffix = self.suffix
        p = len(self.loads)
        lim = m if m <= p else p + 1
        best = suffix[0] / m
        for d in range(1, lim):
            c = suffix[d] / (m - d)
            if c < best:
                best = c
        return best / length

    def split(self, fraction: float) -> "IntervalLoads":
        """Split-copy for grid refinement: every load scaled once.

        Matches the reference's load-preserving split bit for bit: the
        child value is ``parent_load * fraction`` (a single multiply),
        and multiplying a descending array by one positive fraction
        keeps it descending, so no re-sort happens — or is needed.
        """
        child = IntervalLoads.__new__(IntervalLoads)
        child.loads = [v * fraction for v in self.loads]
        child.neg = [-v for v in child.loads]
        child.ids = list(self.ids)
        child._rebuild_suffix()
        return child

    def _rebuild_suffix(self) -> None:
        # Tail-first accumulation — the exact operation order of
        # ``np.cumsum(loads[::-1])[::-1]`` in the reference cache.
        suffix = [0.0] * (len(self.loads) + 1)
        acc = 0.0
        for i in range(len(self.loads) - 1, -1, -1):
            acc += self.loads[i]
            suffix[i] = acc
        self.suffix = suffix

    def max_load_at_speed(self, target_speed: float, m: int, length: float) -> float:
        """Scalar water-level query; bit-identical to ``SortedLoads``."""
        if target_speed <= 0.0:
            return 0.0
        target_load = target_speed * length
        d = bisect_left(self.neg, -target_load)
        if d >= m:
            return 0.0
        z = target_load * (m - d) - self.suffix[d]
        if z <= 0.0:
            return 0.0
        return z if z <= target_load else target_load


class WindowKernel:
    """Frozen view of one job window for the water-filling bisection.

    Exposes the two queries :func:`repro.core.waterfill.waterfill_job`
    hammers on — the window total and the per-interval load vector at a
    candidate speed — evaluated either by a batched numpy pass (wide
    windows) or a tight scalar loop (narrow ones), bit-identically.
    """

    __slots__ = (
        "m",
        "lengths",
        "_neg",
        "_suffix",
        "_scalar",
        "_loads_mat",
        "_suffix_mat",
        "_lengths_arr",
        "_rows",
    )

    def __init__(
        self, stores: "list[IntervalLoads]", lengths: "list[float]", m: int
    ) -> None:
        if m < 1:
            raise InvalidParameterError(f"m must be >= 1, got {m}")
        if len(stores) != len(lengths):
            raise InvalidParameterError(
                f"got {len(stores)} interval stores for {len(lengths)} lengths"
            )
        for length in lengths:
            if not (length > 0.0):
                raise InvalidParameterError(
                    f"interval length must be > 0, got {length}"
                )
        self.m = m
        self.lengths = [float(length) for length in lengths]
        self._neg = [store.neg for store in stores]
        self._suffix = [store.suffix for store in stores]
        # The scalar loop's working set, zipped once: the bisection
        # calls total_at_speed dozens of times per arrival.
        self._scalar = list(zip(self._neg, self._suffix, self.lengths))
        self._loads_mat = None
        self._suffix_mat = None
        self._lengths_arr = None
        self._rows = None
        if len(stores) >= _VECTOR_MIN_INTERVALS:
            width = max((len(store) for store in stores), default=0)
            loads_mat = np.zeros((len(stores), width), dtype=np.float64)
            suffix_mat = np.zeros((len(stores), width + 1), dtype=np.float64)
            for i, store in enumerate(stores):
                p = len(store)
                loads_mat[i, :p] = store.loads
                suffix_mat[i, : p + 1] = store.suffix
            self._loads_mat = loads_mat
            self._suffix_mat = suffix_mat
            self._lengths_arr = np.asarray(self.lengths, dtype=np.float64)
            self._rows = np.arange(len(stores))

    def __len__(self) -> int:
        return len(self.lengths)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _vector_loads(self, speed: float) -> FloatArray:
        """Per-interval loads via one batched numpy pass (wide windows)."""
        target = speed * self._lengths_arr
        d = (self._loads_mat > target[:, None]).sum(axis=1)
        z = target * (self.m - d) - self._suffix_mat[self._rows, d]
        z = np.minimum(np.maximum(z, 0.0), target)
        z[d >= self.m] = 0.0
        return z

    def total_at_speed(self, speed: float) -> float:
        """Sum of ``max_load_at_speed`` over the window's intervals.

        The batched path totals with ``cumsum`` (strictly sequential)
        rather than ``np.sum`` (pairwise), so the accumulation order —
        and therefore every bit — matches the reference's left-to-right
        Python ``sum`` over per-interval queries.
        """
        if speed <= 0.0:
            return 0.0
        if self._loads_mat is not None:
            z = self._vector_loads(speed)
            return float(z.cumsum()[-1]) if z.size else 0.0
        total = 0.0
        m = self.m
        for neg, suffix, length in self._scalar:
            target = speed * length
            d = bisect_left(neg, -target)
            if d >= m:
                continue
            z = target * (m - d) - suffix[d]
            if z > 0.0:
                total += z if z <= target else target
        return total

    def loads_at_speed(self, speed: float) -> FloatArray:
        """Per-interval load vector at ``speed`` (the final placement)."""
        if self._loads_mat is not None:
            if speed <= 0.0:
                return np.zeros(len(self.lengths), dtype=np.float64)
            return np.asarray(self._vector_loads(speed), dtype=np.float64)
        out = np.zeros(len(self.lengths), dtype=np.float64)
        if speed <= 0.0:
            return out
        m = self.m
        for i, (neg, suffix, length) in enumerate(
            zip(self._neg, self._suffix, self.lengths)
        ):
            target = speed * length
            d = bisect_left(neg, -target)
            if d >= m:
                continue
            z = target * (m - d) - suffix[d]
            if z > 0.0:
                out[i] = z if z <= target else target
        return out
