"""JSON-round-trippable representations of instances, schedules, results.

A reproduction library lives or dies by whether experiments can be saved,
shared, and replayed. This module defines a stable, versioned JSON schema
for the three object kinds users exchange:

* **instances** — the problem inputs (jobs + machine),
* **schedules** — full solutions (grid + loads + acceptance),
* **run records** — an algorithm name, its schedule, and its certificate,
  which is everything needed to audit a claim offline.

All functions are pure dict <-> object converters; file handling lives in
:func:`save_json` / :func:`load_json`. Unknown schema versions fail loudly
rather than guessing.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import InvalidParameterError
from ..model.intervals import Grid
from ..model.job import Instance, Job
from ..model.schedule import Schedule

__all__ = [
    "SCHEMA_VERSION",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_json",
    "load_json",
    "canonical_json",
    "stable_hash",
]

SCHEMA_VERSION = 1


def _require_kind(payload: dict, kind: str) -> None:
    if payload.get("schema") != SCHEMA_VERSION:
        raise InvalidParameterError(
            f"unsupported schema version {payload.get('schema')!r}; "
            f"this library writes version {SCHEMA_VERSION}"
        )
    if payload.get("kind") != kind:
        raise InvalidParameterError(
            f"expected a {kind!r} payload, got {payload.get('kind')!r}"
        )


# ----------------------------------------------------------------------
# Instances
# ----------------------------------------------------------------------
def instance_to_dict(instance: Instance) -> dict[str, Any]:
    """Serialize an instance (jobs keep their optional names)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "instance",
        "m": instance.m,
        "alpha": instance.alpha,
        "jobs": [
            {
                "release": job.release,
                "deadline": job.deadline,
                "workload": job.workload,
                "value": job.value,
                **({"name": job.name} if job.name is not None else {}),
            }
            for job in instance.jobs
        ],
    }


def instance_from_dict(payload: dict[str, Any]) -> Instance:
    """Inverse of :func:`instance_to_dict`, with validation."""
    _require_kind(payload, "instance")
    jobs = tuple(
        Job(
            release=float(row["release"]),
            deadline=float(row["deadline"]),
            workload=float(row["workload"]),
            value=float(row["value"]),
            name=row.get("name"),
        )
        for row in payload["jobs"]
    )
    return Instance(jobs, m=int(payload["m"]), alpha=float(payload["alpha"]))


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialize a schedule; loads are stored sparsely (job, interval, load)."""
    loads = schedule.loads
    nz = np.argwhere(loads > 0.0)
    return {
        "schema": SCHEMA_VERSION,
        "kind": "schedule",
        "instance": instance_to_dict(schedule.instance),
        "boundaries": [float(b) for b in schedule.grid.boundaries],
        "finished": [bool(f) for f in schedule.finished],
        "loads": [
            [int(j), int(k), float(loads[j, k])] for j, k in nz
        ],
        "cost": schedule.cost,
        "energy": schedule.energy,
    }


def schedule_from_dict(payload: dict[str, Any]) -> Schedule:
    """Inverse of :func:`schedule_to_dict`; recomputes (and checks) cost."""
    _require_kind(payload, "schedule")
    instance = instance_from_dict(payload["instance"])
    grid = Grid(np.array(payload["boundaries"], dtype=np.float64))
    loads = np.zeros((instance.n, grid.size))
    for j, k, u in payload["loads"]:
        loads[int(j), int(k)] = float(u)
    schedule = Schedule(
        instance=instance,
        grid=grid,
        loads=loads,
        finished=np.array(payload["finished"], dtype=bool),
    )
    stored = float(payload.get("cost", schedule.cost))
    if abs(stored - schedule.cost) > 1e-6 * max(1.0, abs(stored)):
        raise InvalidParameterError(
            f"stored cost {stored} disagrees with recomputed {schedule.cost}; "
            "the payload was produced by an incompatible build or corrupted"
        )
    return schedule


# ----------------------------------------------------------------------
# Stable hashing (content addresses for the engine's result cache)
# ----------------------------------------------------------------------
def canonical_json(payload: dict[str, Any]) -> str:
    """A canonical text form of a payload: sorted keys, no whitespace.

    Floats serialize via ``repr`` (shortest round-tripping form), so two
    payloads hash equal iff they deserialize to bit-identical values.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def stable_hash(payload: dict[str, Any]) -> str:
    """Content address of a JSON payload: sha256 of its canonical form.

    This is the engine's cache-key primitive: an (algorithm × instance)
    cell is keyed by the stable hash of the instance's
    :func:`instance_to_dict` form plus the algorithm name, so any change
    to a job, the machine environment, or the schema version changes the
    key, while re-ordering dict keys or re-serializing does not.
    """
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def save_json(payload: dict[str, Any], path: str | Path) -> None:
    """Write a payload with stable formatting (diff-friendly)."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a payload produced by :func:`save_json`."""
    return json.loads(Path(path).read_text())
