"""Persistence (JSON schemas), the CLI, and the cache-fabric server.

:mod:`repro.io.server` (the HTTP cache service behind ``repro
cache-serve``) is imported on demand, not here — plain ``import
repro.io`` stays cheap.
"""

from .serialize import (
    SCHEMA_VERSION,
    instance_from_dict,
    instance_to_dict,
    load_json,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "SCHEMA_VERSION",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_json",
    "load_json",
]
