"""The cache fabric service: any local backend, served over HTTP.

``CacheServer`` wraps a :class:`~repro.engine.cache.CacheBackend` (a
directory, a WAL-mode sqlite file, or a plain in-memory LRU) behind a
small JSON/HTTP wire protocol, stdlib only (``http.server``), so fleets
of workers on separate machines can share one result cache and one
work-stealing claim table. The CLI front end is ``python -m repro
cache-serve``; the client side is :mod:`repro.engine.remote`.

Wire protocol (Python-dialect JSON — ``NaN`` literals allowed):

| method + path            | request body                    | response |
|--------------------------|---------------------------------|----------|
| ``GET /records/<key>``   | —                               | 200 payload, or 404 |
| ``PUT /records/<key>``   | payload object                  | 204 |
| ``POST /records:batch``  | ``{"get": [keys], "put": {key: payload}}`` | 200 ``{"records": {...}, "stored": n}`` |
| ``GET /timings``         | —                               | 200 ``{"timings": {key: seconds}}`` (all timed entries) |
| ``POST /timings``        | ``{"keys": [keys]}``            | 200 ``{"timings": {...}}`` (subset) |
| ``GET /keys``            | —                               | 200 ``{"keys": [...]}`` |
| ``GET /stats``           | —                               | 200 backend stats + ``claim_tables`` |
| ``POST /gc``             | ``{"older_than": seconds}``     | 200 ``{"removed": n}``, or 501 |
| ``POST /claims/<id>``    | ``{"total": n, "lease": ttl?}`` | 200 ``{"token", "total", "claimed", "lease_ttl"}``, 409 on total/lease mismatch |
| ``POST /claims/<id>/next`` | ``{"count": c}``              | 200 ``{"positions": [...], "token", "remaining"}`` |
| ``POST /claims/<id>/done`` | ``{"positions": [...]}``      | 200 ``{"token", "done"}`` |

Claim tables implement work stealing: a table is created idempotently
under a content-derived id (the experiment fingerprint), hands out
positions ``0..total-1`` in order, at most once each, and remembers a
server-minted session ``token`` that every cooperating worker stamps
into its shard file — the merge step's proof that the shards partition
one claim session. With a ``lease`` TTL (seconds) the table reissues a
claimed position whose ``done`` report never arrives within the TTL,
so one crashed worker cannot strand tail cells; workers of one session
must agree on the lease policy (mismatch is a 409, like a total
mismatch).

Every backend call is serialized behind one lock: handler threads never
touch the backend concurrently, which is what lets a single sqlite
connection (or an unsynchronized ``MemoryCache``) serve safely. Claim
handouts are atomic behind their *own* lock — claim state never touches
the backend, so a slow disk draining bulk record writes cannot stall
the strict (timeout-bounded) claim traffic.
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.parse
import uuid
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Sequence

from ..engine.cache import CacheBackend, backend_stats
from ..engine.runner import InProcessClaimTable
from ..errors import InvalidParameterError, ReproError

__all__ = ["CacheServer"]


@dataclass
class _ClaimState:
    """One claim table: the shared lease state machine plus its session
    token. Guarded by the server's claims lock.

    The cursor/lease/done bookkeeping is
    :class:`~repro.engine.runner.InProcessClaimTable` — the *same*
    class in-process work stealing uses — so the HTTP and in-process
    claim protocols cannot drift. With a lease TTL, handed-out
    positions not reported done are reissued by a later claim — the
    crash-recovery half of the work-stealing protocol (a worker that
    claimed cells and died never reports, so its cells flow back into
    the queue after one TTL).
    """

    table: InProcessClaimTable
    token: str


class _HttpStatus(Exception):
    """An HTTP error response raised from request handling."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class CacheServer:
    """Serve a :class:`CacheBackend` (and claim tables) over HTTP.

    ``port=0`` binds an ephemeral port — read it back from
    :attr:`address` / :attr:`url`. ``start()`` serves on a daemon
    thread (tests, embedding); :meth:`serve_forever` serves on the
    calling thread (the CLI). Neither closes the backend — its owner
    does.
    """

    def __init__(
        self,
        cache: CacheBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        verbose: bool = False,
    ) -> None:
        self.cache = cache
        self.verbose = verbose
        self._lock = threading.RLock()
        # Claim state is pure in-memory and never touches the backend,
        # so it gets its own lock: a slow disk draining bulk record
        # writes must not stall claim handouts past the workers' strict
        # timeout (claim faults abort workers by design).
        self._claims_lock = threading.Lock()
        self._claims: dict[str, _ClaimState] = {}
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.fabric = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def start(self) -> "CacheServer":
        thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        # The serve-thread handle is shared state like any other:
        # embedders start/stop from whatever thread owns the server, so
        # the handle swap happens under the lock (and a double start is
        # refused instead of leaking the first thread).
        with self._lock:
            if self._thread is not None:
                raise InvalidParameterError(
                    "cache server is already started; stop() it first"
                )
            self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            # Join outside the lock: handler threads still draining
            # their last responses may need it.
            thread.join(timeout=5.0)
        self._httpd.server_close()

    # -- backend operations (all serialized behind the lock) ------------
    def get_record(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            return self.cache.get(key)

    def put_record(self, key: str, payload: dict[str, Any]) -> None:
        with self._lock:
            self.cache.put(key, payload)

    def batch(
        self, gets: Sequence[str], puts: dict[str, dict[str, Any]]
    ) -> dict[str, Any]:
        with self._lock:
            for key, payload in puts.items():
                self.cache.put(key, payload)
            records = {}
            for key in gets:
                payload = self.cache.get(key)
                if payload is not None:
                    records[key] = payload
        return {"records": records, "stored": len(puts)}

    def timings(self, keys: Sequence[str] | None) -> dict[str, float]:
        with self._lock:
            probe = getattr(self.cache, "get_timing", None)
            if keys is None:
                keys = list(self.cache.keys())
            out: dict[str, float] = {}
            for key in keys:
                if probe is not None:
                    timing = probe(key)
                else:
                    payload = self.cache.get(key)
                    timing = (
                        payload.get("wall_time") if payload is not None else None
                    )
                if isinstance(timing, (int, float)):
                    out[str(key)] = float(timing)
        return out

    def list_keys(self) -> list[str]:
        with self._lock:
            return sorted(self.cache.keys())

    def stats(self) -> dict[str, Any]:
        with self._lock:
            out = dict(backend_stats(self.cache))
        with self._claims_lock:
            out["claim_tables"] = len(self._claims)
        return out

    def gc(self, older_than: float) -> int:
        collect = getattr(self.cache, "gc", None)
        if collect is None:
            raise _HttpStatus(
                501, f"backend {type(self.cache).__name__} does not support gc"
            )
        with self._lock:
            return int(collect(older_than))

    # -- claim tables ---------------------------------------------------
    def _claim_state(self, claim_id: str) -> _ClaimState:
        state = self._claims.get(claim_id)
        if state is None:
            raise _HttpStatus(
                404, f"no claim table {claim_id}; create it first"
            )
        return state

    def claim_create(
        self, claim_id: str, total: int, lease_ttl: float | None = None
    ) -> dict[str, Any]:
        with self._claims_lock:
            state = self._claims.get(claim_id)
            if state is None:
                state = _ClaimState(
                    table=InProcessClaimTable(total, lease_ttl=lease_ttl),
                    token=uuid.uuid4().hex,
                )
                self._claims[claim_id] = state
            elif state.table.total != total:
                raise _HttpStatus(
                    409,
                    f"claim table {claim_id} holds {state.table.total} "
                    f"positions, this worker expects {total}",
                )
            elif state.table.lease_ttl != lease_ttl:
                raise _HttpStatus(
                    409,
                    f"claim table {claim_id} was created with lease_ttl="
                    f"{state.table.lease_ttl}, this worker asks for "
                    f"{lease_ttl} — cooperating workers must agree on the "
                    "lease policy",
                )
            return {
                "claim": claim_id,
                "total": state.table.total,
                "token": state.token,
                "claimed": state.table.total - state.table.remaining,
                "lease_ttl": state.table.lease_ttl,
            }

    def claim_next(self, claim_id: str, count: int) -> dict[str, Any]:
        with self._claims_lock:
            state = self._claim_state(claim_id)
            positions = state.table.claim(count)
            return {
                "positions": positions,
                "token": state.token,
                "remaining": state.table.remaining,
                # Live leases (claimed, not yet done): an empty handout
                # with outstanding > 0 means "wait, cells may flow
                # back", not "drained" — workers poll instead of
                # exiting, so someone is still claiming when a crashed
                # worker's leases expire.
                "outstanding": state.table.pending(),
            }

    def claim_done(
        self, claim_id: str, positions: Sequence[int]
    ) -> dict[str, Any]:
        with self._claims_lock:
            state = self._claim_state(claim_id)
            try:
                state.table.done(positions)
            except InvalidParameterError as exc:
                raise _HttpStatus(400, str(exc)) from None
            return {
                "token": state.token,
                "done": state.table.done_count,
            }


class _Handler(BaseHTTPRequestHandler):
    """Route one request; all state lives on the :class:`CacheServer`."""

    server_version = "repro-cache/1"
    protocol_version = "HTTP/1.1"

    @property
    def fabric(self) -> CacheServer:
        return self.server.fabric  # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.fabric.verbose:
            sys.stderr.write(
                "cache-serve: %s - %s\n"
                % (self.address_string(), format % args)
            )

    def _segments(self) -> list[str]:
        path = urllib.parse.urlparse(self.path).path
        return [
            urllib.parse.unquote(part)
            for part in path.split("/")
            if part
        ]

    @staticmethod
    def _safe_name(name: str, what: str) -> str:
        """Reject names that could escape a path-backed backend.

        The split-then-unquote in :meth:`_segments` means a percent-
        encoded slash (`..%2F..%2Fetc`) arrives as *one* segment — fed
        raw into ``DirectoryCache._path`` it would join right out of
        the cache directory. Legitimate keys are content hashes (and
        claim ids are experiment fingerprints), so anything with a path
        separator or a dot-dot is an attack or a bug, never traffic.
        """
        if (
            not name
            or "/" in name
            or "\\" in name
            or name in (".", "..")
        ):
            raise _HttpStatus(400, f"illegal {what} {name!r}")
        return name

    def _body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            return None
        try:
            return json.loads(raw)
        except json.JSONDecodeError:
            raise _HttpStatus(400, "request body is not JSON") from None

    def _reply(self, status: int, payload: Any | None = None) -> None:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _dispatch(self, handler) -> None:
        try:
            handler()
        except _HttpStatus as exc:
            self._reply(exc.status, {"error": str(exc)})
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # noqa: BLE001 - one request, not the server
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch(self._get)

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch(self._put)

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch(self._post)

    def _get(self) -> None:
        parts = self._segments()
        if parts == ["stats"]:
            self._reply(200, self.fabric.stats())
        elif parts == ["keys"]:
            self._reply(200, {"keys": self.fabric.list_keys()})
        elif parts == ["timings"]:
            self._reply(200, {"timings": self.fabric.timings(None)})
        elif len(parts) == 2 and parts[0] == "records":
            payload = self.fabric.get_record(
                self._safe_name(parts[1], "record key")
            )
            if payload is None:
                self._reply(404, {"error": f"no record {parts[1]}"})
            else:
                self._reply(200, payload)
        else:
            raise _HttpStatus(404, f"unknown route GET {self.path}")

    def _put(self) -> None:
        parts = self._segments()
        if len(parts) == 2 and parts[0] == "records":
            payload = self._body()
            if not isinstance(payload, dict):
                raise _HttpStatus(400, "record payload must be a JSON object")
            self.fabric.put_record(
                self._safe_name(parts[1], "record key"), payload
            )
            self._reply(204)
        else:
            raise _HttpStatus(404, f"unknown route PUT {self.path}")

    def _post(self) -> None:
        parts = self._segments()
        if parts == ["records:batch"]:
            body = self._body()
            if not isinstance(body, dict):
                raise _HttpStatus(400, "batch body must be a JSON object")
            gets = body.get("get", [])
            puts = body.get("put", {})
            if not isinstance(gets, list) or not isinstance(puts, dict):
                raise _HttpStatus(
                    400, "batch body wants {'get': [keys], 'put': {key: payload}}"
                )
            for key in puts:
                self._safe_name(str(key), "record key")
            bad = [k for k, v in puts.items() if not isinstance(v, dict)]
            if bad:
                raise _HttpStatus(
                    400, f"batch put payloads must be objects (bad: {bad[:3]})"
                )
            # Batch *gets* walk the same backend paths as single-record
            # reads (and /timings can even trigger the DirectoryCache
            # sidecar backfill write), so their keys go through the
            # same traversal gate.
            self._reply(
                200,
                self.fabric.batch(
                    [self._safe_name(str(k), "record key") for k in gets],
                    puts,
                ),
            )
        elif parts == ["timings"]:
            body = self._body()
            keys = None if body is None else body.get("keys")
            if keys is not None and not isinstance(keys, list):
                raise _HttpStatus(400, "timings body wants {'keys': [keys]}")
            if keys is not None:
                keys = [
                    self._safe_name(str(key), "record key") for key in keys
                ]
            self._reply(200, {"timings": self.fabric.timings(keys)})
        elif parts == ["gc"]:
            body = self._body()
            older_than = (body or {}).get("older_than")
            if not isinstance(older_than, (int, float)):
                raise _HttpStatus(400, "gc body wants {'older_than': seconds}")
            self._reply(200, {"removed": self.fabric.gc(float(older_than))})
        elif len(parts) == 2 and parts[0] == "claims":
            body = self._body()
            total = (body or {}).get("total")
            if not isinstance(total, int) or total < 0:
                raise _HttpStatus(400, "claim body wants {'total': n >= 0}")
            lease = (body or {}).get("lease")
            if lease is not None and (
                not isinstance(lease, (int, float))
                or isinstance(lease, bool)
                or not 0.0 < lease < float("inf")
            ):
                raise _HttpStatus(
                    400, "claim lease must be a positive number of seconds"
                )
            self._reply(
                200,
                self.fabric.claim_create(
                    self._safe_name(parts[1], "claim id"),
                    total,
                    None if lease is None else float(lease),
                ),
            )
        elif len(parts) == 3 and parts[0] == "claims" and parts[2] == "next":
            body = self._body()
            count = (body or {}).get("count", 1)
            if not isinstance(count, int) or count < 1:
                raise _HttpStatus(400, "claim body wants {'count': n >= 1}")
            self._reply(
                200,
                self.fabric.claim_next(
                    self._safe_name(parts[1], "claim id"), count
                ),
            )
        elif len(parts) == 3 and parts[0] == "claims" and parts[2] == "done":
            body = self._body()
            positions = (body or {}).get("positions")
            if not isinstance(positions, list):
                raise _HttpStatus(
                    400, "claim body wants {'positions': [ints]}"
                )
            self._reply(
                200,
                self.fabric.claim_done(
                    self._safe_name(parts[1], "claim id"), positions
                ),
            )
        else:
            raise _HttpStatus(404, f"unknown route POST {self.path}")
