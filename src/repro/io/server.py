"""The cache fabric service: any local backend, served over HTTP.

``CacheServer`` wraps a :class:`~repro.engine.cache.CacheBackend` (a
directory, a WAL-mode sqlite file, or a plain in-memory LRU) behind a
small JSON/HTTP wire protocol, stdlib only (``http.server``), so fleets
of workers on separate machines can share one result cache and one
work-stealing claim table. The CLI front end is ``python -m repro
cache-serve``; the client side is :mod:`repro.engine.remote`.

Wire protocol (Python-dialect JSON — ``NaN`` literals allowed):

| method + path            | request body                    | response |
|--------------------------|---------------------------------|----------|
| ``GET /records/<key>``   | —                               | 200 payload, or 404 |
| ``PUT /records/<key>``   | payload object                  | 204 |
| ``POST /records:batch``  | ``{"get": [keys], "put": {key: payload}}`` | 200 ``{"records": {...}, "stored": n}`` |
| ``GET /timings``         | —                               | 200 ``{"timings": {key: seconds}}`` (all timed entries) |
| ``POST /timings``        | ``{"keys": [keys]}``            | 200 ``{"timings": {...}}`` (subset) |
| ``GET /keys``            | —                               | 200 ``{"keys": [...]}`` |
| ``GET /stats``           | —                               | 200 lock-free fabric snapshot (never touches the backend) |
| ``GET /stats?deep=1``    | —                               | 200 full backend stats + ``claim_tables`` |
| ``POST /gc``             | ``{"older_than": seconds}``     | 200 ``{"removed": n}``, or 501 |
| ``POST /claims/<id>``    | ``{"total": n, "lease": ttl?}`` | 200 ``{"token", "total", "claimed", "lease_ttl"}``, 409 on total/lease mismatch |
| ``POST /claims/<id>/next?k=N`` | ``{"count": c}``          | 200 ``{"positions": [...], "token", "remaining", "outstanding"}`` |
| ``POST /claims/<id>/done`` | ``{"positions": [...]}``      | 200 ``{"token", "done"}`` |

Compression (RFC-7694-style negotiation, either end may be old): every
response carries ``Accept-Encoding: deflate`` — the server's standing
offer to accept zlib-deflated *request* bodies. Requests whose
``Accept-Encoding`` includes ``deflate`` get large response bodies
deflated back (``Content-Encoding: deflate``); everyone else gets
identity. A deflated request body that does not inflate is a 400.

Claim tables implement work stealing: a table is created idempotently
under a content-derived id (the experiment fingerprint), hands out
positions ``0..total-1`` in order, at most once each, and remembers a
server-minted session ``token`` that every cooperating worker stamps
into its shard file — the merge step's proof that the shards partition
one claim session. ``?k=N`` (equivalently ``{"count": N}``) leases up
to N positions in one round trip. With a ``lease`` TTL (seconds) the
table reissues a claimed position whose ``done`` report never arrives
within the TTL, so one crashed worker cannot strand tail cells;
workers of one session must agree on the lease policy (mismatch is a
409, like a total mismatch).

Locking, three independent planes:

* **record traffic** is striped: each key hashes (crc32) onto one of N
  mutexes, so concurrent handler threads touch *different* keys in
  parallel and only same-stripe traffic serializes. Full-scan routes
  (``keys``, ``GET /timings``, ``gc``, deep stats) take every stripe
  in index order — a deadlock-free global write barrier. Striping is
  only enabled for backends that declare ``thread_safe = True``;
  anything else (a single sqlite connection) collapses to one stripe,
  which is exactly the old global-lock behavior.
* **claim state** is pure in-memory behind its own mutex: a slow disk
  draining bulk record writes cannot stall claim handouts past the
  workers' strict timeout (claim faults abort workers by design).
* **``GET /stats``** is lock-free: served from plain counters
  (:class:`FabricStats`) that record routes bump as they go, so
  monitoring a busy server never queues behind record traffic — the
  old single-lock design made a dashboard poll stall the claim path.
"""

from __future__ import annotations

import json
import socket
import sys
import threading
import urllib.parse
import uuid
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterator, Sequence

from ..engine.cache import CacheBackend, backend_stats
from ..engine.remote import COMPRESS_MIN_BYTES
from ..engine.runner import InProcessClaimTable
from ..errors import InvalidParameterError, ReproError

__all__ = ["CacheServer", "FabricStats"]

#: Default record-lock stripe count for thread-safe backends. Eight
#: handler threads hashing uniformly across 16 mutexes collide rarely;
#: more stripes buy nothing at sweep-worker fan-in levels.
DEFAULT_STRIPES = 16

_DEFLATE = "deflate"


class FabricStats:
    """Lock-free fabric counters behind the fast ``GET /stats``.

    Plain integer attributes bumped without any mutex: CPython
    attribute increments on ints are GIL-atomic enough for monitoring
    (a preempted increment can lose a count, never corrupt one), and
    the payoff is that the monitoring path never blocks behind record
    traffic. ``entries`` tracks the backend's live entry count exactly
    for append-only backends (seeded from one startup walk, bumped on
    first-time puts, decremented by gc); a bounded LRU evicting behind
    the server's back drifts it — ``/stats?deep=1`` resyncs from the
    authoritative backend walk.
    """

    __slots__ = (
        "requests",
        "record_gets",
        "record_hits",
        "record_puts",
        "new_records",
        "batch_requests",
        "claim_requests",
        "deflate_bodies_in",
        "deflate_bodies_out",
        "entries",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.record_gets = 0
        self.record_hits = 0
        self.record_puts = 0
        self.new_records = 0
        self.batch_requests = 0
        self.claim_requests = 0
        self.deflate_bodies_in = 0
        self.deflate_bodies_out = 0
        self.entries = 0

    # -- bumps (called from handler threads, no locks) ------------------
    def note_request(self) -> None:
        self.requests += 1

    def note_get(self, *, hit: bool) -> None:
        self.record_gets += 1
        if hit:
            self.record_hits += 1

    def note_put(self, *, new: bool) -> None:
        self.record_puts += 1
        if new:
            self.new_records += 1
            self.entries += 1

    def note_batch(self) -> None:
        self.batch_requests += 1

    def note_claim(self) -> None:
        self.claim_requests += 1

    def note_deflate_in(self) -> None:
        self.deflate_bodies_in += 1

    def note_deflate_out(self) -> None:
        self.deflate_bodies_out += 1

    def note_removed(self, count: int) -> None:
        self.entries = max(0, self.entries - count)

    def resync_entries(self, count: int) -> None:
        self.entries = count

    def snapshot(self) -> dict[str, int]:
        """One monitoring sample (a plain dict — no backend touched)."""
        return {
            "requests": self.requests,
            "record_gets": self.record_gets,
            "record_hits": self.record_hits,
            "record_puts": self.record_puts,
            "new_records": self.new_records,
            "batch_requests": self.batch_requests,
            "claim_requests": self.claim_requests,
            "deflate_bodies_in": self.deflate_bodies_in,
            "deflate_bodies_out": self.deflate_bodies_out,
        }


class _LockStripes:
    """N mutexes fronting the record routes; keys hash onto stripes.

    ``for_key`` serializes same-key (well, same-stripe) traffic only;
    ``all_stripes`` takes every mutex in index order — every holder
    acquires in the same order, so the global barrier cannot deadlock
    against per-key holders.
    """

    def __init__(self, count: int) -> None:
        self._locks = [threading.Lock() for _ in range(count)]

    def __len__(self) -> int:
        return len(self._locks)

    def for_key(self, key: str) -> threading.Lock:
        return self._locks[zlib.crc32(key.encode("utf-8")) % len(self._locks)]

    @contextmanager
    def all_stripes(self) -> Iterator[None]:
        for lock in self._locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(self._locks):
                lock.release()


@dataclass
class _ClaimState:
    """One claim table: the shared lease state machine plus its session
    token. Guarded by the server's claims lock.

    The cursor/lease/done bookkeeping is
    :class:`~repro.engine.runner.InProcessClaimTable` — the *same*
    class in-process work stealing uses — so the HTTP and in-process
    claim protocols cannot drift. With a lease TTL, handed-out
    positions not reported done are reissued by a later claim — the
    crash-recovery half of the work-stealing protocol (a worker that
    claimed cells and died never reports, so its cells flow back into
    the queue after one TTL).
    """

    table: InProcessClaimTable
    token: str


class _HttpStatus(Exception):
    """An HTTP error response raised from request handling."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class CacheServer:
    """Serve a :class:`CacheBackend` (and claim tables) over HTTP.

    ``port=0`` binds an ephemeral port — read it back from
    :attr:`address` / :attr:`url`. ``start()`` serves on a daemon
    thread (tests, embedding); :meth:`serve_forever` serves on the
    calling thread (the CLI). Neither closes the backend — its owner
    does.

    ``stripes`` sets the record-lock stripe count; the default is
    :data:`DEFAULT_STRIPES` for backends declaring ``thread_safe =
    True`` and 1 (the old fully-serialized behavior) otherwise.
    Asking for more than one stripe over a backend that is not
    thread-safe is refused — striping would hand its unsynchronized
    internals to concurrent handler threads.
    """

    def __init__(
        self,
        cache: CacheBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        verbose: bool = False,
        stripes: int | None = None,
    ) -> None:
        self.cache = cache
        self.verbose = verbose
        concurrent = bool(getattr(cache, "thread_safe", False))
        if stripes is None:
            stripes = DEFAULT_STRIPES if concurrent else 1
        if not isinstance(stripes, int) or isinstance(stripes, bool) or stripes < 1:
            raise InvalidParameterError(
                f"stripes must be an int >= 1, got {stripes!r}"
            )
        if stripes > 1 and not concurrent:
            raise InvalidParameterError(
                f"backend {type(cache).__name__} does not declare "
                "thread_safe = True; it must be served with stripes=1 "
                "(concurrent handler threads would corrupt it)"
            )
        self._records = _LockStripes(stripes)
        self.stats_counters = FabricStats()
        # One startup walk pins the backend's identity and seeds the
        # live entry counter, so the fast /stats never needs another.
        identity = dict(backend_stats(cache))
        self._backend_name = str(identity.get("backend", type(cache).__name__))
        self._backend_location = identity.get("location")
        seeded = identity.get("entries")
        self.stats_counters.resync_entries(
            seeded if isinstance(seeded, int) else 0
        )
        # Lifecycle lock: guards only the serve-thread handle now that
        # record traffic rides the stripes.
        self._lock = threading.RLock()
        # Claim state is pure in-memory and never touches the backend,
        # so it gets its own lock: a slow disk draining bulk record
        # writes must not stall claim handouts past the workers' strict
        # timeout (claim faults abort workers by design).
        self._claims_lock = threading.Lock()
        self._claims: dict[str, _ClaimState] = {}
        # Live client sockets, registered by handler setup/finish: with
        # keep-alive transport, stop() must actively sever parked
        # connections — handler threads otherwise sit in readline on
        # warm sockets and keep serving a "stopped" server.
        self._connections: set[socket.socket] = set()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.fabric = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def start(self) -> "CacheServer":
        thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        # The serve-thread handle is shared state like any other:
        # embedders start/stop from whatever thread owns the server, so
        # the handle swap happens under the lock (and a double start is
        # refused instead of leaking the first thread).
        with self._lock:
            if self._thread is not None:
                raise InvalidParameterError(
                    "cache server is already started; stop() it first"
                )
            self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        # Sever live keep-alive connections: clients must see a real
        # disconnect (their pools redial and find the port closed),
        # exactly as if the server process had died.
        with self._lock:
            live = list(self._connections)
            self._connections.clear()
        for conn in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already closing on its own
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            # Join outside the lock: handler threads still draining
            # their last responses may need it.
            thread.join(timeout=5.0)
        self._httpd.server_close()

    def _track(self, conn: socket.socket) -> None:
        with self._lock:
            self._connections.add(conn)

    def _untrack(self, conn: socket.socket) -> None:
        with self._lock:
            self._connections.discard(conn)

    # -- backend operations (striped per-key locks) ---------------------
    def get_record(self, key: str) -> dict[str, Any] | None:
        with self._records.for_key(key):
            payload = self.cache.get(key)
        self.stats_counters.note_get(hit=payload is not None)
        return payload

    def put_record(self, key: str, payload: dict[str, Any]) -> None:
        with self._records.for_key(key):
            fresh = key not in self.cache
            self.cache.put(key, payload)
        self.stats_counters.note_put(new=fresh)

    def batch(
        self, gets: Sequence[str], puts: dict[str, dict[str, Any]]
    ) -> dict[str, Any]:
        # Per-key locking, not one barrier: records are immutable and
        # content-addressed, so a batch needs no cross-key atomicity —
        # two batches interleaving key-by-key still each read either
        # a miss or the one true payload.
        self.stats_counters.note_batch()
        for key, payload in puts.items():
            self.put_record(key, payload)
        records = {}
        for key in gets:
            payload = self.get_record(key)
            if payload is not None:
                records[key] = payload
        return {"records": records, "stored": len(puts)}

    def timings(self, keys: Sequence[str] | None) -> dict[str, float]:
        if keys is None:
            # Full scan (and DirectoryCache may backfill sidecars as it
            # probes): take the global barrier like every scan route.
            with self._records.all_stripes():
                return self._timings_locked(list(self.cache.keys()))
        out: dict[str, float] = {}
        for key in keys:
            with self._records.for_key(key):
                out.update(self._timings_locked([key]))
        return out

    def _timings_locked(self, keys: Sequence[str]) -> dict[str, float]:
        probe = getattr(self.cache, "get_timing", None)
        out: dict[str, float] = {}
        for key in keys:
            if probe is not None:
                timing = probe(key)
            else:
                payload = self.cache.get(key)
                timing = (
                    payload.get("wall_time") if payload is not None else None
                )
            if isinstance(timing, (int, float)):
                out[str(key)] = float(timing)
        return out

    def list_keys(self) -> list[str]:
        with self._records.all_stripes():
            return sorted(self.cache.keys())

    def stats_fast(self) -> dict[str, Any]:
        """The lock-free monitoring snapshot: live counters plus the
        identity pinned at startup. Never touches the backend, never
        waits on record traffic — safe to poll against a busy server.
        ``len(self._claims)`` is read without the claims lock: a dict
        length is GIL-consistent, and monitoring tolerates being one
        table off mid-create."""
        return {
            "backend": self._backend_name,
            "location": self._backend_location,
            "entries": self.stats_counters.entries,
            "claim_tables": len(self._claims),
            "deep": False,
            "fabric": self.stats_counters.snapshot(),
        }

    def stats(self) -> dict[str, Any]:
        """The authoritative deep walk (``/stats?deep=1``): full
        backend stats under the global barrier, resyncing the live
        entry counter while it holds the truth."""
        with self._records.all_stripes():
            out = dict(backend_stats(self.cache))
        entries = out.get("entries")
        if isinstance(entries, int):
            self.stats_counters.resync_entries(entries)
        out["claim_tables"] = len(self._claims)
        out["deep"] = True
        out["fabric"] = self.stats_counters.snapshot()
        return out

    def gc(self, older_than: float) -> int:
        collect = getattr(self.cache, "gc", None)
        if collect is None:
            raise _HttpStatus(
                501, f"backend {type(self.cache).__name__} does not support gc"
            )
        with self._records.all_stripes():
            removed = int(collect(older_than))
        self.stats_counters.note_removed(removed)
        return removed

    # -- claim tables ---------------------------------------------------
    def _claim_state(self, claim_id: str) -> _ClaimState:
        state = self._claims.get(claim_id)
        if state is None:
            raise _HttpStatus(
                404, f"no claim table {claim_id}; create it first"
            )
        return state

    def claim_create(
        self, claim_id: str, total: int, lease_ttl: float | None = None
    ) -> dict[str, Any]:
        with self._claims_lock:
            state = self._claims.get(claim_id)
            if state is None:
                state = _ClaimState(
                    table=InProcessClaimTable(total, lease_ttl=lease_ttl),
                    token=uuid.uuid4().hex,
                )
                self._claims[claim_id] = state
            elif state.table.total != total:
                raise _HttpStatus(
                    409,
                    f"claim table {claim_id} holds {state.table.total} "
                    f"positions, this worker expects {total}",
                )
            elif state.table.lease_ttl != lease_ttl:
                raise _HttpStatus(
                    409,
                    f"claim table {claim_id} was created with lease_ttl="
                    f"{state.table.lease_ttl}, this worker asks for "
                    f"{lease_ttl} — cooperating workers must agree on the "
                    "lease policy",
                )
            return {
                "claim": claim_id,
                "total": state.table.total,
                "token": state.token,
                "claimed": state.table.total - state.table.remaining,
                "lease_ttl": state.table.lease_ttl,
            }

    def claim_next(self, claim_id: str, count: int) -> dict[str, Any]:
        self.stats_counters.note_claim()
        with self._claims_lock:
            state = self._claim_state(claim_id)
            positions = state.table.claim(count)
            return {
                "positions": positions,
                "token": state.token,
                "remaining": state.table.remaining,
                # Live leases (claimed, not yet done): an empty handout
                # with outstanding > 0 means "wait, cells may flow
                # back", not "drained" — workers poll instead of
                # exiting, so someone is still claiming when a crashed
                # worker's leases expire.
                "outstanding": state.table.pending(),
            }

    def claim_done(
        self, claim_id: str, positions: Sequence[int]
    ) -> dict[str, Any]:
        with self._claims_lock:
            state = self._claim_state(claim_id)
            try:
                state.table.done(positions)
            except InvalidParameterError as exc:
                raise _HttpStatus(400, str(exc)) from None
            return {
                "token": state.token,
                "done": state.table.done_count,
            }


class _Handler(BaseHTTPRequestHandler):
    """Route one request; all state lives on the :class:`CacheServer`."""

    server_version = "repro-cache/1"
    protocol_version = "HTTP/1.1"

    #: Idle keep-alive cutoff: a handler thread parked in readline for
    #: this long closes its connection and exits instead of leaking.
    #: Client pools treat the severed socket as stale and redial.
    timeout = 60.0

    #: Headers and body go out as separate segments; with Nagle on,
    #: the body waits ~40ms for the headers' delayed ACK on every
    #: keep-alive request. TCP_NODELAY is what makes pooling pay off.
    disable_nagle_algorithm = True

    @property
    def fabric(self) -> CacheServer:
        return self.server.fabric  # type: ignore[attr-defined]

    def setup(self) -> None:
        super().setup()
        self.fabric._track(self.connection)

    def finish(self) -> None:
        self.fabric._untrack(self.connection)
        super().finish()

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.fabric.verbose:
            sys.stderr.write(
                "cache-serve: %s - %s\n"
                % (self.address_string(), format % args)
            )

    def _segments(self) -> list[str]:
        path = urllib.parse.urlparse(self.path).path
        return [
            urllib.parse.unquote(part)
            for part in path.split("/")
            if part
        ]

    def _query(self) -> dict[str, str]:
        query = urllib.parse.urlparse(self.path).query
        return {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(query).items()
        }

    @staticmethod
    def _safe_name(name: str, what: str) -> str:
        """Reject names that could escape a path-backed backend.

        The split-then-unquote in :meth:`_segments` means a percent-
        encoded slash (`..%2F..%2Fetc`) arrives as *one* segment — fed
        raw into ``DirectoryCache._path`` it would join right out of
        the cache directory. Legitimate keys are content hashes (and
        claim ids are experiment fingerprints), so anything with a path
        separator or a dot-dot is an attack or a bug, never traffic.
        """
        if (
            not name
            or "/" in name
            or "\\" in name
            or name in (".", "..")
        ):
            raise _HttpStatus(400, f"illegal {what} {name!r}")
        return name

    def _body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            return None
        encoding = (self.headers.get("Content-Encoding") or "").strip().lower()
        if encoding == _DEFLATE:
            self.fabric.stats_counters.note_deflate_in()
            try:
                raw = zlib.decompress(raw)
            except zlib.error:
                raise _HttpStatus(
                    400, "deflate request body does not inflate"
                ) from None
        elif encoding and encoding != "identity":
            raise _HttpStatus(
                415, f"unsupported Content-Encoding {encoding!r}"
            )
        try:
            return json.loads(raw)
        except json.JSONDecodeError:
            raise _HttpStatus(400, "request body is not JSON") from None

    def _reply(self, status: int, payload: Any | None = None) -> None:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        headers = [("Content-Type", "application/json")]
        accepted = (self.headers.get("Accept-Encoding") or "").lower()
        if (
            body
            and 200 <= status < 300
            and _DEFLATE in accepted
            and len(body) >= COMPRESS_MIN_BYTES
        ):
            body = zlib.compress(body)
            headers.append(("Content-Encoding", _DEFLATE))
            self.fabric.stats_counters.note_deflate_out()
        self.send_response(status)
        for name, value in headers:
            self.send_header(name, value)
        # RFC 7694: the standing offer to accept deflated request
        # bodies — the client-side pool flips on compression only
        # after seeing this marker, so old servers never receive it.
        self.send_header("Accept-Encoding", _DEFLATE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _dispatch(self, handler) -> None:
        self.fabric.stats_counters.note_request()
        try:
            handler()
        except _HttpStatus as exc:
            self._reply(exc.status, {"error": str(exc)})
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # noqa: BLE001 - one request, not the server
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch(self._get)

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch(self._put)

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch(self._post)

    def _get(self) -> None:
        parts = self._segments()
        if parts == ["stats"]:
            deep = self._query().get("deep", "").lower() in ("1", "true", "yes")
            self._reply(
                200, self.fabric.stats() if deep else self.fabric.stats_fast()
            )
        elif parts == ["keys"]:
            self._reply(200, {"keys": self.fabric.list_keys()})
        elif parts == ["timings"]:
            self._reply(200, {"timings": self.fabric.timings(None)})
        elif len(parts) == 2 and parts[0] == "records":
            payload = self.fabric.get_record(
                self._safe_name(parts[1], "record key")
            )
            if payload is None:
                self._reply(404, {"error": f"no record {parts[1]}"})
            else:
                self._reply(200, payload)
        else:
            raise _HttpStatus(404, f"unknown route GET {self.path}")

    def _put(self) -> None:
        parts = self._segments()
        if len(parts) == 2 and parts[0] == "records":
            payload = self._body()
            if not isinstance(payload, dict):
                raise _HttpStatus(400, "record payload must be a JSON object")
            self.fabric.put_record(
                self._safe_name(parts[1], "record key"), payload
            )
            self._reply(204)
        else:
            raise _HttpStatus(404, f"unknown route PUT {self.path}")

    def _post(self) -> None:
        parts = self._segments()
        if parts == ["records:batch"]:
            body = self._body()
            if not isinstance(body, dict):
                raise _HttpStatus(400, "batch body must be a JSON object")
            gets = body.get("get", [])
            puts = body.get("put", {})
            if not isinstance(gets, list) or not isinstance(puts, dict):
                raise _HttpStatus(
                    400, "batch body wants {'get': [keys], 'put': {key: payload}}"
                )
            for key in puts:
                self._safe_name(str(key), "record key")
            bad = [k for k, v in puts.items() if not isinstance(v, dict)]
            if bad:
                raise _HttpStatus(
                    400, f"batch put payloads must be objects (bad: {bad[:3]})"
                )
            # Batch *gets* walk the same backend paths as single-record
            # reads (and /timings can even trigger the DirectoryCache
            # sidecar backfill write), so their keys go through the
            # same traversal gate.
            self._reply(
                200,
                self.fabric.batch(
                    [self._safe_name(str(k), "record key") for k in gets],
                    puts,
                ),
            )
        elif parts == ["timings"]:
            body = self._body()
            keys = None if body is None else body.get("keys")
            if keys is not None and not isinstance(keys, list):
                raise _HttpStatus(400, "timings body wants {'keys': [keys]}")
            if keys is not None:
                keys = [
                    self._safe_name(str(key), "record key") for key in keys
                ]
            self._reply(200, {"timings": self.fabric.timings(keys)})
        elif parts == ["gc"]:
            body = self._body()
            older_than = (body or {}).get("older_than")
            if not isinstance(older_than, (int, float)):
                raise _HttpStatus(400, "gc body wants {'older_than': seconds}")
            self._reply(200, {"removed": self.fabric.gc(float(older_than))})
        elif len(parts) == 2 and parts[0] == "claims":
            body = self._body()
            total = (body or {}).get("total")
            if not isinstance(total, int) or total < 0:
                raise _HttpStatus(400, "claim body wants {'total': n >= 0}")
            lease = (body or {}).get("lease")
            if lease is not None and (
                not isinstance(lease, (int, float))
                or isinstance(lease, bool)
                or not 0.0 < lease < float("inf")
            ):
                raise _HttpStatus(
                    400, "claim lease must be a positive number of seconds"
                )
            self._reply(
                200,
                self.fabric.claim_create(
                    self._safe_name(parts[1], "claim id"),
                    total,
                    None if lease is None else float(lease),
                ),
            )
        elif len(parts) == 3 and parts[0] == "claims" and parts[2] == "next":
            body = self._body()
            count = (body or {}).get("count", 1)
            # ?k=N is the batched-handout wire form; new clients send
            # both (an old server ignores the query and honors the
            # body), and the query wins when they disagree.
            k = self._query().get("k")
            if k is not None:
                try:
                    count = int(k)
                except ValueError:
                    raise _HttpStatus(
                        400, f"claim query wants ?k=<int >= 1>, got k={k!r}"
                    ) from None
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                raise _HttpStatus(400, "claim body wants {'count': n >= 1}")
            self._reply(
                200,
                self.fabric.claim_next(
                    self._safe_name(parts[1], "claim id"), count
                ),
            )
        elif len(parts) == 3 and parts[0] == "claims" and parts[2] == "done":
            body = self._body()
            positions = (body or {}).get("positions")
            if not isinstance(positions, list):
                raise _HttpStatus(
                    400, "claim body wants {'positions': [ints]}"
                )
            self._reply(
                200,
                self.fabric.claim_done(
                    self._safe_name(parts[1], "claim id"), positions
                ),
            )
        else:
            raise _HttpStatus(404, f"unknown route POST {self.path}")
