"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``generate``
    Produce an instance from a named workload family and write it as JSON.
``run``
    Run any registered algorithm on an instance file; print the summary
    and optionally save the schedule.
``compare``
    Run several algorithms on the same instance and print a cost table.
``certify``
    Run PD and print the full Theorem 3 audit report.
``figures``
    Regenerate the paper's Figure 2 / Figure 3 renderings.
``discrete``
    Run PD on a finite speed menu and report the emulation overhead.
``profit``
    Profit accounting of a PD run (the Pruhs–Stein objective), with
    optional resource augmentation.
``adversary``
    Hill-climb for hard instances and report the hardest certified ratio.
``sweep``
    Declarative parameter sweep on the experiment engine: an
    (alpha × m × value-multiplier) grid over one workload family — or a
    *workload axis* (repeatable ``--workload`` specs like
    ``heavy-tail?n=64&alpha=3.0``) — for any set of registered
    algorithms, including parameterized variant specs (``pd?delta=0.05``)
    and declarative variant axes (``--variant delta=0.01,0.05``).
    Optionally parallel (``--workers``), cached (``--cache`` +
    ``--cache-backend {dir,sqlite,memory,http,tiered}``; ``http`` talks
    to a ``cache-serve`` process at ``--cache-url``, ``tiered`` stacks
    memory → local dir → remote), streamed (``--progress`` prints a
    completion-order ticker to stderr), and split across machines
    (``--shard i/k`` to compute one deterministic slice —
    ``--shard-strategy lpt`` balances the slices by measured per-cell
    cost from the cache, ``--shard-strategy steal`` claims cells
    dynamically from the cache server's shared claim table —
    ``--merge shard0.json shard1.json ...`` to recombine slices into
    the exact unsharded result).
``cache-serve``
    Serve a local cache backend (and the work-stealing claim table)
    over HTTP for a fleet of sweep workers.
``cache``
    Cache maintenance: ``stats`` (backend, entries, bytes, timing
    coverage — any backend, including a remote server) and ``gc
    --older-than`` (prune old entries and stale temp files).
``bench``
    Run named perf scenarios (``pd-scaling``, ``oa-scaling``,
    ``yds-scaling``, ``grid-refine``, ``cache-micro``) and write
    machine-readable ``BENCH_<scenario>.json`` series; ``--baseline
    DIR`` gates on >``--factor``× per-point regressions against the
    committed baselines (machine-calibrated).

The CLI is a thin shell over the library: every subcommand body is a few
calls into the public API, which keeps it honest as documentation.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from typing import Callable, Sequence

from ..analysis.report import audit_run
from ..core.pd import run_pd
from ..core.simulator import available_algorithms, run_algorithm
from ..errors import InvalidParameterError, ReproError
from ..model.job import Instance
from .serialize import (
    instance_from_dict,
    instance_to_dict,
    load_json,
    save_json,
    schedule_to_dict,
    stable_hash,
)

__all__ = ["main", "build_parser"]


def _generators() -> dict[str, Callable[..., Instance]]:
    from ..workloads import named_families

    return named_families()


def _cache_backends() -> dict[str, Callable]:
    from ..engine.cache import BACKENDS

    return BACKENDS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Profitable scheduling on multiple speed-scalable processors "
            "(Kling & Pietrzyk, SPAA 2013) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a workload instance")
    gen.add_argument("family", choices=sorted(_generators()))
    gen.add_argument("output", help="output JSON path")
    gen.add_argument("-n", type=int, default=20, help="number of jobs")
    gen.add_argument("-m", type=int, default=1, help="processors")
    gen.add_argument("--alpha", type=float, default=3.0)
    gen.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="run one algorithm on an instance file")
    run.add_argument(
        "algorithm",
        metavar="algorithm",
        help=(
            "registry name or variant spec (e.g. pd?delta=0.05); "
            f"names: {', '.join(available_algorithms())}"
        ),
    )
    run.add_argument("instance", help="instance JSON path")
    run.add_argument("--save-schedule", help="write the schedule JSON here")
    run.add_argument("--gantt", action="store_true", help="print a Gantt chart")

    cmp_ = sub.add_parser("compare", help="run several algorithms side by side")
    cmp_.add_argument("instance", help="instance JSON path")
    cmp_.add_argument(
        "--algorithms",
        default="pd,cll,oa",
        help="comma-separated registry names (default: pd,cll,oa)",
    )

    cert = sub.add_parser("certify", help="run PD and print the audit report")
    cert.add_argument("instance", help="instance JSON path")
    cert.add_argument("--delta", type=float, default=None)

    sub.add_parser("figures", help="regenerate the paper's Figures 2 and 3")

    disc = sub.add_parser(
        "discrete", help="run PD on a finite speed menu (SpeedStep-style)"
    )
    disc.add_argument("instance", help="instance JSON path")
    disc.add_argument(
        "--levels", type=int, default=8, help="number of geometric speed levels"
    )
    disc.add_argument(
        "--cap",
        type=float,
        default=None,
        help="explicit top speed (default: cover the continuous run)",
    )

    prof = sub.add_parser(
        "profit", help="profit accounting (Pruhs-Stein objective) of a PD run"
    )
    prof.add_argument("instance", help="instance JSON path")
    prof.add_argument(
        "--epsilon",
        type=float,
        default=0.0,
        help="speed augmentation (0 = plain PD)",
    )

    adv = sub.add_parser(
        "adversary", help="hill-climb for instances maximizing PD's ratio"
    )
    adv.add_argument("instance", help="seed instance JSON path")
    adv.add_argument("--rounds", type=int, default=100)
    adv.add_argument("--seed", type=int, default=0)
    adv.add_argument("--save", help="write the hardest instance JSON here")

    swp = sub.add_parser(
        "sweep", help="parameter-grid sweep on the experiment engine"
    )
    swp.add_argument(
        "family",
        nargs="?",
        default=None,
        help=(
            "workload family name or parameterized spec (e.g. "
            f"heavy-tail?pareto_shape=2.0); families: "
            f"{', '.join(sorted(_generators()))}. Omit when sweeping a "
            "--workload axis or merging shards"
        ),
    )
    swp.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "workload-axis entry (repeatable): a registry spec like "
            "heavy-tail?n=64&alpha=3.0, swept alongside the other "
            "entries; replaces the positional family"
        ),
    )
    swp.add_argument(
        "--algorithms",
        default="pd",
        help="comma-separated registry names (default: pd)",
    )
    swp.add_argument(
        "--alphas",
        default=None,
        help="comma-separated alpha grid (default: 3.0)",
    )
    swp.add_argument(
        "--ms",
        default=None,
        help="comma-separated processor counts (default: 1)",
    )
    swp.add_argument(
        "--value-x",
        default=None,
        help="comma-separated value multipliers (extra grid axis)",
    )
    swp.add_argument("-n", type=int, default=20, help="jobs per instance")
    swp.add_argument("--seeds", default="0,1,2", help="comma-separated seeds")
    swp.add_argument(
        "--variant",
        action="append",
        default=None,
        metavar="KEY=V1,V2,...",
        help=(
            "algorithm-parameter axis applied to every algorithm as a "
            "variant spec (repeatable; e.g. --variant delta=0.01,0.05)"
        ),
    )
    swp.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = serial)"
    )
    swp.add_argument(
        "--cache",
        default=None,
        help=(
            "content-addressed result-cache path (directory or sqlite "
            "file; the local tier for --cache-backend tiered)"
        ),
    )
    swp.add_argument(
        "--cache-backend",
        choices=sorted([*_cache_backends(), "tiered"]),
        default="dir",
        help=(
            "cache backend for --cache (default: dir); http talks to a "
            "cache-serve process at --cache-url, tiered stacks "
            "memory -> --cache dir -> --cache-url remote"
        ),
    )
    swp.add_argument(
        "--cache-url",
        default=None,
        metavar="URL",
        help=(
            "base URL of a `repro cache-serve` process (for "
            "--cache-backend http/tiered, and the claim table of "
            "--shard-strategy steal)"
        ),
    )
    swp.add_argument(
        "--shard",
        default=None,
        metavar="I/K",
        help=(
            "compute only the deterministic shard I of K (0-based) and "
            "write its records to --json for a later --merge"
        ),
    )
    swp.add_argument(
        "--shard-strategy",
        choices=["rr", "lpt", "steal"],
        default="rr",
        help=(
            "how --shard splits the grid: positional round-robin (rr, "
            "default), longest-processing-time balancing over measured "
            "per-cell costs read from --cache (lpt; cells without a "
            "cached timing weigh 1.0), or dynamic work stealing (steal; "
            "each worker claims cells from the cache server's shared "
            "claim table at --cache-url, so the shard index only labels "
            "the worker)"
        ),
    )
    swp.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "claim-lease TTL for --shard-strategy steal: a claimed cell "
            "whose completion is not reported within this many seconds "
            "is reissued to another worker (crash recovery; all "
            "cooperating workers must pass the same value). Pick a TTL "
            "comfortably above the most expensive cell. Default: no "
            "leases (exactly-once claiming, crashed workers strand "
            "their claimed cells until --merge flags the hole)"
        ),
    )
    swp.add_argument(
        "--claim-batch",
        type=int,
        default=None,
        metavar="N",
        help=(
            "positions leased per claim round trip for --shard-strategy "
            "steal (the server's claim_next?k=N). Default: --workers for "
            "pooled runs, 1 for serial. Larger batches amortize claim "
            "latency against a remote table at the cost of coarser "
            "stealing"
        ),
    )
    swp.add_argument(
        "--claim-session",
        default="",
        metavar="LABEL",
        help=(
            "label folded into the steal claim-table id (all cooperating "
            "workers must pass the same one); use a fresh label to re-run "
            "a sweep whose previous claim table the server still holds"
        ),
    )
    swp.add_argument(
        "--batch-mode",
        choices=["arrival", "epoch"],
        default=None,
        help=(
            "main-loop execution strategy for algorithms with an "
            "epoch-batched path (bit-parity-tested: records and cache "
            "keys are identical either way; epoch is the fast choice "
            "for large n). Default: each algorithm's own default"
        ),
    )
    swp.add_argument(
        "--progress",
        action="store_true",
        help="print a completion-order progress ticker to stderr",
    )
    swp.add_argument(
        "--merge",
        nargs="+",
        default=None,
        metavar="SHARD.json",
        help=(
            "merge shard record files (one per shard, any order) into "
            "the full sweep instead of computing anything"
        ),
    )
    swp.add_argument(
        "--json", dest="json_out", default=None, help="also write cells as JSON"
    )

    srv = sub.add_parser(
        "cache-serve",
        help="serve a result cache (and the steal claim table) over HTTP",
    )
    srv.add_argument("path", help="cache path (directory or sqlite file)")
    srv.add_argument(
        "--backend",
        choices=["dir", "memory", "sqlite"],
        default="dir",
        help="local backend to serve (default: dir; memory ignores path)",
    )
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    srv.add_argument(
        "--verbose", action="store_true", help="log every request to stderr"
    )
    srv.add_argument(
        "--stripes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "record-lock stripes (default: 16 for thread-safe backends "
            "like dir/memory, 1 for sqlite — which must stay serialized)"
        ),
    )

    bch = sub.add_parser(
        "bench",
        help="run named perf scenarios and write BENCH_<scenario>.json",
    )
    bch.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "scenario to run (repeatable; default: all). Known names "
            "come from repro.perf.bench.SCENARIOS — see --list"
        ),
    )
    bch.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="print every scenario with its full and smoke grids, then exit",
    )
    bch.add_argument(
        "--grid",
        choices=["full", "smoke"],
        default="full",
        help="point grid: full (tracked) or smoke (reduced, for CI)",
    )
    bch.add_argument(
        "--out",
        default=os.path.join("benchmarks", "results"),
        help="directory for BENCH_<scenario>.json (default: benchmarks/results)",
    )
    bch.add_argument(
        "--baseline",
        default=None,
        metavar="DIR",
        help=(
            "baseline directory to compare against (exit 1 on any point "
            "slower than --factor x its baseline, machine-calibrated)"
        ),
    )
    bch.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="regression gate multiplier (default: 2.0)",
    )
    bch.add_argument(
        "--update-baseline",
        default=None,
        metavar="DIR",
        help="also write the fresh results into this baseline directory",
    )
    bch.add_argument(
        "--profile",
        action="store_true",
        help=(
            "additionally run each point once under cProfile and write "
            "the top-25 cumulative-time tables to a .profile.txt "
            "sibling of the BENCH json (timed measurements stay "
            "unprofiled)"
        ),
    )

    lnt = sub.add_parser(
        "lint",
        help="AST-based invariant checker (RPR determinism/lock/parity codes)",
    )
    lnt.add_argument(
        "paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help="files or directories to check (default: src)",
    )
    lnt.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODES",
        help=(
            "only report these codes (comma-separated, prefix match: "
            "RPR2 selects the whole lock-coverage family; repeatable)"
        ),
    )
    lnt.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="lint_format",
        help="output format (default: text)",
    )
    lnt.add_argument(
        "--list-codes",
        action="store_true",
        help="print every RPR code with its description, then exit",
    )

    cch = sub.add_parser("cache", help="inspect and maintain result caches")
    cch_sub = cch.add_subparsers(dest="cache_command", required=True)
    for name, blurb in (
        ("stats", "backend, entry count, total bytes, timing coverage"),
        ("gc", "prune entries older than --older-than (plus stale temp files)"),
    ):
        ccmd = cch_sub.add_parser(name, help=blurb)
        ccmd.add_argument(
            "--cache",
            default=None,
            help="cache path (directory or sqlite file)",
        )
        ccmd.add_argument(
            "--cache-backend",
            # no "memory": stats/gc on a cache born empty this very
            # invocation could only ever report nothing
            choices=sorted({*_cache_backends(), "tiered"} - {"memory"}),
            default="dir",
            help="backend at --cache (default: dir)",
        )
        ccmd.add_argument(
            "--cache-url",
            default=None,
            metavar="URL",
            help="a cache-serve URL (for --cache-backend http/tiered)",
        )
        if name == "gc":
            ccmd.add_argument(
                "--older-than",
                required=True,
                metavar="AGE",
                help=(
                    "prune entries older than this: seconds, or a number "
                    "with an s/m/h/d/w suffix (e.g. 30d)"
                ),
            )
    return parser


def _load_instance(path: str) -> Instance:
    return instance_from_dict(load_json(path))


def _cmd_generate(args: argparse.Namespace) -> int:
    inst = _generators()[args.family](
        args.n, m=args.m, alpha=args.alpha, seed=args.seed
    )
    save_json(instance_to_dict(inst), args.output)
    print(f"wrote {inst.n} jobs (m={inst.m}, alpha={inst.alpha}) to {args.output}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    outcome = run_algorithm(args.algorithm, inst)
    print(outcome.schedule.summary())
    if args.save_schedule:
        save_json(schedule_to_dict(outcome.schedule), args.save_schedule)
        print(f"schedule written to {args.save_schedule}")
    if args.gantt:
        from ..viz import gantt

        print(gantt(outcome.schedule))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    names = [s.strip() for s in args.algorithms.split(",") if s.strip()]
    print(f"{'algorithm':<12} {'cost':>12} {'energy':>12} {'lost value':>12} {'accepted':>9}")
    print("-" * 62)
    for name in names:
        try:
            outcome = run_algorithm(name, inst)
        except ReproError as exc:
            print(f"{name:<12} (skipped: {exc})")
            continue
        sched = outcome.schedule
        acc = int(sched.finished.sum())
        print(
            f"{name:<12} {sched.cost:>12.4f} {sched.energy:>12.4f} "
            f"{sched.lost_value:>12.4f} {acc:>5d}/{inst.n}"
        )
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    result = run_pd(inst, delta=args.delta)
    report = audit_run(result)
    print(report.text)
    return 0 if report.ok else 1


def _cmd_figures(_: argparse.Namespace) -> int:
    from ..model.power import PolynomialPower
    from ..chen import schedule_interval
    from ..viz import interval_gantt, speed_profile
    from ..classical.oa import run_oa

    power = PolynomialPower(3.0)
    print("Figure 2a — before the new job:")
    before = schedule_interval([3.0, 1.2, 1.0, 0.8], m=4, start=0.0, end=1.0, power=power)
    print(interval_gantt([before], width=56, m=4))
    print("\nFigure 2b — after a new job of size 1.5:")
    after = schedule_interval(
        [3.0, 1.2, 1.0, 0.8, 1.5], m=4, start=0.0, end=1.0, power=power
    )
    print(interval_gantt([after], width=56, m=4))

    inst = Instance.classical([(0.0, 3.0, 1.5), (1.0, 2.0, 1.2)], m=1, alpha=3.0)
    print("\nFigure 3a — PD:")
    print(speed_profile(run_pd(inst).schedule, width=56, height=6))
    print("\nFigure 3b — OA:")
    print(speed_profile(run_oa(inst).schedule, width=56, height=6))
    return 0


def _cmd_discrete(args: argparse.Namespace) -> int:
    from ..discrete import (
        SpeedSet,
        menu_covering_schedule,
        run_pd_discrete,
        worst_overhead_factor,
    )

    inst = _load_instance(args.instance)
    continuous = run_pd(inst)
    if args.cap is not None:
        menu = SpeedSet.geometric(
            0.02 * args.cap, args.cap, args.levels
        ) if args.levels > 1 else SpeedSet([args.cap])
    else:
        menu = menu_covering_schedule(continuous, args.levels)
    result = run_pd_discrete(inst, menu)
    print(result.summary())
    bound = worst_overhead_factor(menu, inst.alpha)
    print(f"  analytic envelope bound on the overhead: x{bound:.4f}")
    return 0


def _cmd_profit(args: argparse.Namespace) -> int:
    from ..profit import profit_of_result, run_pd_augmented

    inst = _load_instance(args.instance)
    if args.epsilon > 0.0:
        augmented = run_pd_augmented(inst, args.epsilon)
        print(augmented.summary())
    else:
        result = run_pd(inst)
        print(result.schedule.summary())
        print(f"  {profit_of_result(result)}")
    return 0


def _cmd_adversary(args: argparse.Namespace) -> int:
    from ..analysis.adversary import search_adversarial

    seed_inst = _load_instance(args.instance)
    out = search_adversarial([seed_inst], rounds=args.rounds, rng=args.seed)
    print(
        f"hardest certified ratio: {out.ratio:.4f} of bound {out.bound:.4f} "
        f"({100 * out.ratio / out.bound:.1f}%), {out.evaluations} evaluations"
    )
    print(f"hardest instance: {out.instance.n} jobs")
    if args.save:
        save_json(instance_to_dict(out.instance), args.save)
        print(f"written to {args.save}")
    return 0


def _csv(text: str, cast: Callable):
    return [cast(s.strip()) for s in text.split(",") if s.strip()]


def _number(text: str):
    """Parse a variant-axis value: int if it looks like one, else float."""
    try:
        return int(text)
    except ValueError:
        return float(text)


def _parse_shard(text: str) -> tuple[int, int]:
    index, sep, count = text.partition("/")
    try:
        if not sep:
            raise ValueError
        return int(index), int(count)
    except ValueError:
        raise InvalidParameterError(
            f"--shard expects I/K (e.g. 0/2), got {text!r}"
        ) from None


#: Age-suffix multipliers ``cache gc --older-than`` understands.
_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def _parse_age(text: str) -> float:
    """``"90"`` → 90 s; ``"30d"`` → 30 days of seconds."""
    cleaned = text.strip().lower()
    multiplier = 1.0
    if cleaned and cleaned[-1] in _AGE_UNITS:
        multiplier = _AGE_UNITS[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = float(cleaned)
    except ValueError:
        value = -1.0
    # Non-finite values must not slip through: NaN is incomparable (so
    # `< 0` alone would admit it) and a NaN cutoff makes the sqlite
    # backend's "created_at IS NULL" clause prune every legacy entry.
    if not math.isfinite(value) or value < 0.0:
        raise InvalidParameterError(
            f"--older-than expects seconds or <number><s|m|h|d|w>, "
            f"got {text!r}"
        )
    return value * multiplier


def _open_cli_cache(
    cache: str | None,
    backend: str,
    url: str | None,
    *,
    allow_bare_url: bool = False,
):
    """Open the cache a subcommand asked for, or ``None`` for no cache.

    The three remote shapes: ``--cache-backend http`` is the server
    alone (``--cache-url``), ``tiered`` is memory → local dir
    (``--cache``) → server, and ``allow_bare_url`` lets a local-backend
    invocation carry a ``--cache-url`` anyway (the steal strategy needs
    the server for its claim table even when results cache elsewhere).
    """
    from ..engine.cache import MemoryCache, TieredCache, open_cache

    if backend == "http":
        if url is None:
            raise InvalidParameterError(
                "--cache-backend http needs --cache-url URL "
                "(a running `repro cache-serve` process)"
            )
        if cache is not None:
            raise InvalidParameterError(
                "--cache-backend http stores nothing locally; drop --cache "
                "or use --cache-backend tiered for a local tier"
            )
        return open_cache(url, "http")
    if backend == "tiered":
        if cache is None or url is None:
            raise InvalidParameterError(
                "--cache-backend tiered stacks memory -> local dir -> "
                "remote; give both --cache (the local directory) and "
                "--cache-url (the server)"
            )
        from ..engine.remote import HttpCache

        return TieredCache(
            [MemoryCache(), open_cache(cache, "dir"), HttpCache(url)]
        )
    if url is not None and not allow_bare_url:
        raise InvalidParameterError(
            "--cache-url only applies to --cache-backend http or tiered "
            "(or to --shard-strategy steal, whose claim table lives on "
            "the server)"
        )
    if backend == "memory":
        if cache is not None:
            raise InvalidParameterError(
                "--cache-backend memory stores nothing on disk and would "
                "silently ignore --cache; drop --cache for a transient "
                "in-process cache, or pick dir/sqlite for the path"
            )
        return open_cache(None, "memory")
    if cache is None:
        return None
    return open_cache(cache, backend)


def _format_stats(stats: dict, indent: int = 0) -> list[str]:
    """Human-readable lines for a backend-stats dict (tiers recurse)."""
    pad = "  " * indent
    location = stats.get("location") or stats.get("url")
    lines = [
        f"{pad}backend        : {stats.get('backend', '?')}"
        + (f" ({location})" if location else "")
    ]
    entries = stats.get("entries")
    if entries is not None:
        lines.append(f"{pad}entries        : {entries}")
    if stats.get("total_bytes") is not None:
        lines.append(f"{pad}total bytes    : {stats['total_bytes']}")
    timed = stats.get("timed_entries")
    if timed is not None and entries is not None:
        pct = (100.0 * timed / entries) if entries else 100.0
        lines.append(
            f"{pad}timing coverage: {timed}/{entries} ({pct:.1f}%)"
        )
    if stats.get("claim_tables"):
        lines.append(f"{pad}claim tables   : {stats['claim_tables']}")
    for tier in stats.get("tiers", ()):
        lines.append(f"{pad}tier:")
        lines.extend(_format_stats(tier, indent + 1))
    return lines


def _cmd_cache_serve(args: argparse.Namespace) -> int:
    from ..engine.cache import open_cache
    from .server import CacheServer

    cache = open_cache(args.path, args.backend)
    server = CacheServer(
        cache,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        stripes=args.stripes,
    )
    host, port = server.address
    print(
        f"serving {args.backend} cache {args.path} at http://{host}:{port} "
        "(ctrl-c to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        cache.close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from ..perf.bench import (
        SCENARIOS,
        compare_to_baseline,
        load_result,
        run_scenario,
        write_result,
    )

    if args.list_scenarios:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            print(f"{name}: {scenario.summary}")
            for grid in ("full", "smoke"):
                points = scenario.points(grid)
                rendered = ", ".join(
                    "{" + ", ".join(f"{k}={v}" for k, v in p.items()) + "}"
                    for p in points
                )
                print(f"  {grid} ({len(points)} points): {rendered}")
        return 0

    names = args.scenario or sorted(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise InvalidParameterError(
            f"unknown scenario(s) {unknown}; "
            f"available: {', '.join(sorted(SCENARIOS))}"
        )
    if args.update_baseline and args.grid != "full":
        # A smoke series replacing a committed full-grid baseline would
        # silently shrink the set of gated points — the tripwire would
        # still "pass" while watching a fraction of the grid.
        raise InvalidParameterError(
            "--update-baseline requires --grid full: baselines must "
            "cover every tracked point, not the reduced smoke grid"
        )
    regressions: list[str] = []
    payloads: list[dict] = []
    for name in names:
        payload = run_scenario(
            name,
            grid=args.grid,
            progress=lambda line: print(line, file=sys.stderr),
            profile=args.profile,
        )
        # Profile tables live next to the BENCH json, not inside it —
        # the committed series (and baselines) stay measurement-only.
        profiles = payload.pop("profiles", None)
        payloads.append(payload)
        path = write_result(payload, args.out)
        print(f"{name}: {len(payload['series'])} points -> {path}")
        if profiles:
            profile_path = path[: -len(".json")] + ".profile.txt"
            with open(profile_path, "w") as fh:
                for entry in profiles:
                    fh.write(f"=== {name} {entry['point']} ===\n")
                    fh.write(entry["table"])
                    fh.write("\n")
            print(f"{name}: {len(profiles)} profiles -> {profile_path}")
        if args.baseline:
            base_path = os.path.join(args.baseline, f"BENCH_{name}.json")
            if os.path.exists(base_path):
                regressions.extend(
                    compare_to_baseline(
                        payload, load_result(base_path), factor=args.factor
                    )
                )
            else:
                print(
                    f"(no baseline for {name} at {base_path}; skipping gate)",
                    file=sys.stderr,
                )
    if regressions:
        print("PERF REGRESSIONS:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        if args.update_baseline:
            print(
                "(baselines NOT updated: fix or accept the regression "
                "by re-running without --baseline)",
                file=sys.stderr,
            )
        return 1
    # Baselines are refreshed only after the gate (if any) passed, so a
    # regressed run can never quietly become the new normal.
    for payload in payloads:
        if args.update_baseline:
            write_result(payload, args.update_baseline)
    if args.baseline:
        print(f"baseline gate passed (factor {args.factor:g}x)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from ..analysis.static import format_findings, known_codes, run_lint

    if args.list_codes:
        for code, description in known_codes().items():
            print(f"{code}  {description}")
        return 0
    select = None
    if args.select:
        select = [
            code.strip()
            for chunk in args.select
            for code in chunk.split(",")
            if code.strip()
        ]
    findings = run_lint(args.paths or ["src"], select=select)
    print(format_findings(findings, args.lint_format))
    return 1 if findings else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from ..engine.cache import backend_stats

    if args.cache is None and args.cache_url is None:
        raise InvalidParameterError(
            "give --cache PATH (a local cache) or --cache-backend http "
            "--cache-url URL (a cache server)"
        )
    if args.cache is not None and not os.path.exists(args.cache):
        # Opening would silently create an empty store, and stats/gc on
        # a cache born this very invocation could only mislead (a
        # typo'd path would report "0 entries" for a populated cache).
        raise InvalidParameterError(
            f"no cache at {args.cache!r} — maintenance commands do not "
            "create stores; check the path"
        )
    cache = _open_cli_cache(args.cache, args.cache_backend, args.cache_url)
    try:
        if args.cache_command == "stats":
            for line in _format_stats(backend_stats(cache)):
                print(line)
            return 0
        age = _parse_age(args.older_than)
        collect = getattr(cache, "gc", None)
        if collect is None:
            raise InvalidParameterError(
                f"backend {args.cache_backend!r} does not support gc"
            )
        removed = collect(age)
        print(f"pruned {removed} entries older than {args.older_than}")
        return 0
    finally:
        cache.close()


def _variant_axes(specs: Sequence[str] | None) -> dict[str, list]:
    axes: dict[str, list] = {}
    for spec in specs or ():
        key, sep, values = spec.partition("=")
        if not sep or not key or not values:
            raise InvalidParameterError(
                f"--variant expects KEY=V1,V2,..., got {spec!r}"
            )
        axes[key.strip()] = _csv(values, _number)
    return axes


def _cells_payload(experiment: str, cells) -> dict:
    """The sweep's machine-readable form — shared by the direct and the
    merged paths so a merged sharded sweep is byte-identical to an
    unsharded one."""
    return {
        "schema": 1,
        "kind": "sweep",
        "experiment": experiment,
        "cells": [
            {
                "algorithm": c.algorithm,
                "params": c.params,
                "mean_cost": c.mean_cost,
                "mean_energy": c.mean_energy,
                "mean_acceptance": c.mean_acceptance,
                # strict-JSON friendly: no NaN literals in the output
                "worst_certified_ratio": (
                    None
                    if math.isnan(c.worst_certified_ratio)
                    else c.worst_certified_ratio
                ),
                "runs": c.runs,
            }
            for c in cells
        ],
    }


def _print_cells(experiment: str, cells) -> None:
    from ..analysis.sweeps import SweepCell, format_cells

    table = [
        SweepCell(
            params={"algorithm": c.algorithm, **c.params},
            mean_cost=c.mean_cost,
            worst_certified_ratio=c.worst_certified_ratio,
            mean_acceptance=c.mean_acceptance,
            runs=c.runs,
        )
        for c in cells
    ]
    print(format_cells(table, title=experiment))


def _merge_shard_files(paths: Sequence[str]):
    """Load shard record files and recombine them in request order.

    Shard files written by this build carry their owned request
    ``positions``, so any :func:`~repro.engine.runner.shard_assignment`
    strategy (round-robin or measured-cost LPT) merges back exactly;
    files without positions fall back to the historical round-robin
    interleave.
    """
    from ..engine import record_from_payload
    from ..engine.runner import merge_shards, record_to_payload

    by_index: dict[int, list] = {}
    positions_by_index: dict[int, list | None] = {}
    experiments = set()
    counts = set()
    assignments = set()
    totals = set()
    strategies = set()
    for path in paths:
        payload = load_json(path)
        if payload.get("kind") != "sweep-shard":
            raise InvalidParameterError(
                f"{path} is not a sweep shard file (kind="
                f"{payload.get('kind')!r}); produce one with --shard I/K"
            )
        index, count = payload["shard"]
        counts.add(int(count))
        experiments.add(payload.get("experiment"))
        strategies.add(payload.get("strategy"))
        if "assignment" in payload:
            assignments.add(payload["assignment"])
        if "total" in payload:
            totals.add(int(payload["total"]))
        if index in by_index:
            raise InvalidParameterError(f"shard {index} given twice")
        by_index[int(index)] = [
            record_from_payload(r) for r in payload["records"]
        ]
        positions_by_index[int(index)] = payload.get("positions")
    if len(counts) != 1 or len(experiments) != 1:
        raise InvalidParameterError(
            f"shard files disagree (experiments={sorted(map(str, experiments))}, "
            f"shard counts={sorted(counts)}); merge shards of one sweep only"
        )
    if len(assignments) > 1:
        raise InvalidParameterError(
            "shard files were cut from different shard assignments — with "
            "--shard-strategy lpt this means the invocations read different "
            "timing snapshots (e.g. earlier shards wrote new timings into "
            "the shared cache; re-cut every shard against the same frozen "
            "cache state), and with --shard-strategy steal it means the "
            "workers joined different claim sessions (e.g. the cache "
            "server restarted between workers; re-run them against one "
            "server lifetime)"
        )
    count = counts.pop()
    missing = sorted(set(range(count)) - set(by_index))
    if missing:
        raise InvalidParameterError(
            f"missing shard file(s) for index(es) {missing} of {count}"
        )
    if len(totals) > 1:
        raise InvalidParameterError(
            f"shard files disagree on the grid size ({sorted(totals)}); "
            "merge shards of one sweep only"
        )
    shards = [by_index[i] for i in range(count)]
    experiment = experiments.pop()
    if any(positions_by_index[i] is None for i in range(count)):
        return experiment, merge_shards(shards)

    def dedup_form(record) -> str:
        """Identity of a record minus per-worker bookkeeping.

        ``cached`` reflects each worker's own cache state and
        ``wall_time`` is a machine measurement; two workers that both
        computed one cell (a lease reissued mid-compute) must compare
        equal on everything else.
        """
        payload = record_to_payload(record)
        payload.pop("cached")
        payload.pop("wall_time")
        return stable_hash(payload)

    # Lease reissue makes steal claiming at-least-once: a
    # slower-than-its-lease worker and the reissue's recipient can both
    # legitimately record one cell. Keep the lowest shard's copy after
    # checking the duplicates agree; for static strategies a duplicate
    # still means broken shard files and fails loudly.
    allow_duplicates = strategies == {"steal"}
    # The declared grid size beats the record-count sum: with dynamic
    # (steal) shards, a worker that claimed cells and died leaves a hole
    # that only the declared total can expose — if the lost cells are
    # the last positions of the grid, the surviving records still form
    # a dense prefix a sum-based total would happily accept.
    total = totals.pop() if totals else sum(len(s) for s in shards)
    chosen: dict[int, object] = {}
    duplicates = 0
    for shard in sorted(positions_by_index):
        positions = positions_by_index[shard]
        records = by_index[shard]
        if len(positions) != len(records):
            raise InvalidParameterError(
                f"shard {shard} lists {len(positions)} positions for "
                f"{len(records)} records"
            )
        for position, record in zip(positions, records):
            if not isinstance(position, int) or not 0 <= position < total:
                raise InvalidParameterError(
                    f"shard position lists do not partition the request "
                    f"list (bad position {position!r})"
                )
            kept = chosen.get(position)
            if kept is None:
                chosen[position] = record
                continue
            if not allow_duplicates:
                raise InvalidParameterError(
                    f"shard position lists do not partition the request "
                    f"list (duplicate position {position})"
                )
            if dedup_form(kept) != dedup_form(record):
                raise InvalidParameterError(
                    f"two workers recorded different results for grid "
                    f"position {position} — the claim session is "
                    "corrupt (mixed request lists?); re-run against a "
                    "fresh claim session"
                )
            duplicates += 1
    if duplicates:
        print(
            f"(dropped {duplicates} duplicate record(s) from reissued "
            "claim leases; kept the lowest shard's copy)",
            file=sys.stderr,
        )
    missing = total - len(chosen)
    if missing:
        raise InvalidParameterError(
            f"shard files cover {total - missing} of {total} grid "
            f"positions — {missing} cell(s) were claimed but never "
            "computed (a worker died mid-run?); re-run the missing "
            "worker(s) against a fresh claim session (cached cells "
            "stream back instantly)"
        )
    return experiment, [chosen[position] for position in range(total)]


def _progress_printer(args: argparse.Namespace):
    """The ``--progress`` ticker: one stderr line per completed record.

    Completion order, not request order — that is the point: the
    runner's streaming core reports cells the moment they land, so a
    long sweep shows life (and per-cell cost) immediately.
    """
    if not args.progress:
        return None

    def progress(record, done: int, total: int) -> None:
        note = (
            " (cached)" if record.cached else f" {record.wall_time:.3f}s"
        )
        print(
            f"[{done}/{total}] {record.algorithm}{note}", file=sys.stderr
        )

    return progress


def _cmd_sweep(args: argparse.Namespace) -> int:
    from ..engine import (
        BatchRunner,
        ExperimentSpec,
        aggregate_records,
        record_to_payload,
        shard_assignment,
    )

    if args.shard and args.merge:
        raise InvalidParameterError(
            "--shard computes a slice, --merge recombines slices; "
            "use one per invocation"
        )

    if args.merge:
        experiment, records = _merge_shard_files(args.merge)
        cells = aggregate_records(records)
        _print_cells(experiment, cells)
        print(f"(merged {len(args.merge)} shards, {len(records)} records)")
        if args.json_out:
            save_json(_cells_payload(experiment, cells), args.json_out)
            print(f"cells written to {args.json_out}")
        return 0

    if (args.family is None) == (not args.workload):
        raise InvalidParameterError(
            "specify a positional workload family or --workload SPEC "
            "entries (one source, not both)"
        )

    # alpha/m become grid axes by default on the plain positional-family
    # path (the historical grid), but only when asked for explicitly if
    # the workload itself may pin them — a --workload axis entry or a
    # parameterized positional spec (`heavy-tail?alpha=2.5`): a silent
    # default axis would clash with the pin. An *explicit* --alphas/--ms
    # against a pinned knob still fails loudly, as it should.
    pinned: set[str] = set()
    if args.family and "?" in args.family:
        from ..workloads.registry import WORKLOADS

        pinned = set(WORKLOADS.info(args.family).params)
    grid: dict[str, list] = {}
    if args.alphas is not None or (not args.workload and "alpha" not in pinned):
        grid["alpha"] = _csv(args.alphas or "3.0", float)
    if args.ms is not None or (not args.workload and "m" not in pinned):
        grid["m"] = _csv(args.ms or "1", int)
    if args.value_x:
        grid["value_x"] = _csv(args.value_x, float)
    common = dict(
        grid=grid,
        algorithms=tuple(_csv(args.algorithms, str)),
        variants=_variant_axes(args.variant),
        n=args.n,
        seeds=tuple(_csv(args.seeds, int)),
        skip_incapable=True,
        batch_mode=args.batch_mode,
    )
    if args.workload:
        from ..workloads.registry import WORKLOADS

        # Label the sweep with *canonical* spec names so every spelling
        # of the same workload axis writes byte-identical cells JSON.
        canonical = [WORKLOADS.info(entry).name for entry in args.workload]
        spec = ExperimentSpec(
            name=f"sweep:{','.join(canonical)}",
            workloads=tuple(args.workload),
            **common,
        )
    else:
        spec = ExperimentSpec(
            name=f"sweep:{args.family}", family=args.family, **common
        )
    if args.lease_ttl is not None and args.shard_strategy != "steal":
        raise InvalidParameterError(
            "--lease-ttl only applies to --shard-strategy steal (claim "
            "leases live on the server's claim table)"
        )
    if args.claim_batch is not None and args.shard_strategy != "steal":
        raise InvalidParameterError(
            "--claim-batch only applies to --shard-strategy steal "
            "(static shards have no claim round trips to batch)"
        )
    if args.shard_strategy == "steal":
        if args.cache_url is None:
            raise InvalidParameterError(
                "--shard-strategy steal needs --cache-url: the shared "
                "claim table lives on the cache server"
            )
        if not args.shard:
            raise InvalidParameterError(
                "--shard-strategy steal needs --shard I/K — each worker "
                "invocation is one of the K cooperating shard files"
            )
    cache = _open_cli_cache(
        args.cache,
        args.cache_backend,
        args.cache_url,
        allow_bare_url=args.shard_strategy == "steal",
    )
    runner = BatchRunner(
        workers=args.workers, cache=cache, claim_batch=args.claim_batch
    )
    progress = _progress_printer(args)

    try:
        if args.shard:
            if not args.json_out:
                raise InvalidParameterError(
                    "--shard needs --json FILE to store the shard's records "
                    "for the --merge step"
                )
            index, count = _parse_shard(args.shard)
            if count < 1 or not 0 <= index < count:
                raise InvalidParameterError(
                    f"--shard index must satisfy 0 <= I < K, got {args.shard!r}"
                )
            requests = spec.requests()
            if args.shard_strategy == "steal":
                from ..engine.remote import HttpClaimTable

                # The claim id is the experiment fingerprint: workers
                # that compiled different request lists land on
                # different tables (or are rejected on a total
                # mismatch) instead of interleaving mismatched grids.
                # Claim tables live for the server's lifetime, so
                # re-running a finished sweep against the same server
                # needs a fresh --claim-session label (the drained
                # table would otherwise hand every worker nothing and
                # the merge would fail loudly).
                claim_id = spec.fingerprint(requests)
                if args.claim_session:
                    claim_id = f"{claim_id}-{args.claim_session}"
                claims = HttpClaimTable(
                    args.cache_url,
                    claim_id,
                    len(requests),
                    lease_ttl=args.lease_ttl,
                )
                try:
                    pairs = runner.run_stolen(
                        requests, claims, on_record=progress
                    )
                finally:
                    claims.close()
                positions = [position for position, _ in pairs]
                records = [record for _, record in pairs]
                # The claim session's server-minted token plays the
                # assignment-fingerprint role: every worker of one
                # session stamps the same token, so --merge recognizes
                # dynamically-claimed shards as one run.
                fingerprint = claims.token
            else:
                costs = (
                    runner.estimate_costs(requests)
                    if args.shard_strategy == "lpt"
                    else None
                )
                assignment = shard_assignment(
                    len(requests),
                    count,
                    strategy=args.shard_strategy,
                    costs=costs,
                )
                positions = [
                    p for p in range(len(requests)) if assignment[p] == index
                ]
                records = runner.run(
                    [requests[p] for p in positions], on_record=progress
                )
                # Fingerprint of the full split this shard was cut
                # from: --merge compares it across files, so shards
                # cut from disagreeing LPT cost snapshots (e.g. a
                # cache that later shards mutated) fail with a
                # targeted message instead of a confusing one.
                fingerprint = stable_hash(
                    {"kind": "shard-assignment", "assignment": assignment}
                )
            save_json(
                {
                    "schema": 1,
                    "kind": "sweep-shard",
                    "experiment": spec.name,
                    "shard": [index, count],
                    "strategy": args.shard_strategy,
                    "assignment": fingerprint,
                    # The full grid size: --merge validates the shards'
                    # positions partition 0..total-1 exactly, so cells a
                    # crashed steal worker claimed but never computed
                    # are detected even when they sit at the very end
                    # of the grid (a record-count sum could not see
                    # such a tail hole).
                    "total": len(requests),
                    "positions": positions,
                    "records": [record_to_payload(r) for r in records],
                },
                args.json_out,
            )
            print(
                f"shard {index}/{count} ({args.shard_strategy}): "
                f"{len(records)} records written to "
                f"{args.json_out} ({runner.stats.computed} computed, "
                f"{runner.stats.cache_hits} from cache)"
            )
            return 0

        cells = aggregate_records(runner.run(spec.requests(), on_record=progress))
        _print_cells(spec.name, cells)
        stats = runner.stats
        note = (
            f", {stats.deduplicated} deduplicated" if stats.deduplicated else ""
        )
        print(
            f"({stats.computed} cells computed, "
            f"{stats.cache_hits} served from cache{note})"
        )
        if args.json_out:
            save_json(_cells_payload(spec.name, cells), args.json_out)
            print(f"cells written to {args.json_out}")
        return 0
    finally:
        # Release the backend promptly (checkpoints sqlite's WAL sidecar
        # files) instead of leaving the connection to the GC.
        if cache is not None:
            cache.close()


_DISPATCH = {
    "generate": _cmd_generate,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "certify": _cmd_certify,
    "figures": _cmd_figures,
    "discrete": _cmd_discrete,
    "profit": _cmd_profit,
    "adversary": _cmd_adversary,
    "sweep": _cmd_sweep,
    "cache-serve": _cmd_cache_serve,
    "cache": _cmd_cache,
    "bench": _cmd_bench,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _DISPATCH[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
