"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``generate``
    Produce an instance from a named workload family and write it as JSON.
``run``
    Run any registered algorithm on an instance file; print the summary
    and optionally save the schedule.
``compare``
    Run several algorithms on the same instance and print a cost table.
``certify``
    Run PD and print the full Theorem 3 audit report.
``figures``
    Regenerate the paper's Figure 2 / Figure 3 renderings.
``discrete``
    Run PD on a finite speed menu and report the emulation overhead.
``profit``
    Profit accounting of a PD run (the Pruhs–Stein objective), with
    optional resource augmentation.
``adversary``
    Hill-climb for hard instances and report the hardest certified ratio.
``sweep``
    Declarative parameter sweep on the experiment engine: an
    (alpha × m × value-multiplier) grid over a workload family for any
    set of registered algorithms, optionally parallel (``--workers``)
    and cached (``--cache``).

The CLI is a thin shell over the library: every subcommand body is a few
calls into the public API, which keeps it honest as documentation.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Callable, Sequence

from ..analysis.report import audit_run
from ..core.pd import run_pd
from ..core.simulator import available_algorithms, run_algorithm
from ..errors import ReproError
from ..model.job import Instance
from .serialize import (
    instance_from_dict,
    instance_to_dict,
    load_json,
    save_json,
    schedule_to_dict,
)

__all__ = ["main", "build_parser"]


def _generators() -> dict[str, Callable[..., Instance]]:
    from ..workloads import named_families

    return named_families()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Profitable scheduling on multiple speed-scalable processors "
            "(Kling & Pietrzyk, SPAA 2013) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a workload instance")
    gen.add_argument("family", choices=sorted(_generators()))
    gen.add_argument("output", help="output JSON path")
    gen.add_argument("-n", type=int, default=20, help="number of jobs")
    gen.add_argument("-m", type=int, default=1, help="processors")
    gen.add_argument("--alpha", type=float, default=3.0)
    gen.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="run one algorithm on an instance file")
    run.add_argument("algorithm", choices=available_algorithms())
    run.add_argument("instance", help="instance JSON path")
    run.add_argument("--save-schedule", help="write the schedule JSON here")
    run.add_argument("--gantt", action="store_true", help="print a Gantt chart")

    cmp_ = sub.add_parser("compare", help="run several algorithms side by side")
    cmp_.add_argument("instance", help="instance JSON path")
    cmp_.add_argument(
        "--algorithms",
        default="pd,cll,oa",
        help="comma-separated registry names (default: pd,cll,oa)",
    )

    cert = sub.add_parser("certify", help="run PD and print the audit report")
    cert.add_argument("instance", help="instance JSON path")
    cert.add_argument("--delta", type=float, default=None)

    sub.add_parser("figures", help="regenerate the paper's Figures 2 and 3")

    disc = sub.add_parser(
        "discrete", help="run PD on a finite speed menu (SpeedStep-style)"
    )
    disc.add_argument("instance", help="instance JSON path")
    disc.add_argument(
        "--levels", type=int, default=8, help="number of geometric speed levels"
    )
    disc.add_argument(
        "--cap",
        type=float,
        default=None,
        help="explicit top speed (default: cover the continuous run)",
    )

    prof = sub.add_parser(
        "profit", help="profit accounting (Pruhs-Stein objective) of a PD run"
    )
    prof.add_argument("instance", help="instance JSON path")
    prof.add_argument(
        "--epsilon",
        type=float,
        default=0.0,
        help="speed augmentation (0 = plain PD)",
    )

    adv = sub.add_parser(
        "adversary", help="hill-climb for instances maximizing PD's ratio"
    )
    adv.add_argument("instance", help="seed instance JSON path")
    adv.add_argument("--rounds", type=int, default=100)
    adv.add_argument("--seed", type=int, default=0)
    adv.add_argument("--save", help="write the hardest instance JSON here")

    swp = sub.add_parser(
        "sweep", help="parameter-grid sweep on the experiment engine"
    )
    swp.add_argument("family", choices=sorted(_generators()))
    swp.add_argument(
        "--algorithms",
        default="pd",
        help="comma-separated registry names (default: pd)",
    )
    swp.add_argument("--alphas", default="3.0", help="comma-separated alpha grid")
    swp.add_argument("--ms", default="1", help="comma-separated processor counts")
    swp.add_argument(
        "--value-x",
        default=None,
        help="comma-separated value multipliers (extra grid axis)",
    )
    swp.add_argument("-n", type=int, default=20, help="jobs per instance")
    swp.add_argument("--seeds", default="0,1,2", help="comma-separated seeds")
    swp.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = serial)"
    )
    swp.add_argument(
        "--cache", default=None, help="content-addressed result-cache directory"
    )
    swp.add_argument(
        "--json", dest="json_out", default=None, help="also write cells as JSON"
    )
    return parser


def _load_instance(path: str) -> Instance:
    return instance_from_dict(load_json(path))


def _cmd_generate(args: argparse.Namespace) -> int:
    inst = _generators()[args.family](
        args.n, m=args.m, alpha=args.alpha, seed=args.seed
    )
    save_json(instance_to_dict(inst), args.output)
    print(f"wrote {inst.n} jobs (m={inst.m}, alpha={inst.alpha}) to {args.output}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    outcome = run_algorithm(args.algorithm, inst)
    print(outcome.schedule.summary())
    if args.save_schedule:
        save_json(schedule_to_dict(outcome.schedule), args.save_schedule)
        print(f"schedule written to {args.save_schedule}")
    if args.gantt:
        from ..viz import gantt

        print(gantt(outcome.schedule))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    names = [s.strip() for s in args.algorithms.split(",") if s.strip()]
    print(f"{'algorithm':<12} {'cost':>12} {'energy':>12} {'lost value':>12} {'accepted':>9}")
    print("-" * 62)
    for name in names:
        try:
            outcome = run_algorithm(name, inst)
        except ReproError as exc:
            print(f"{name:<12} (skipped: {exc})")
            continue
        sched = outcome.schedule
        acc = int(sched.finished.sum())
        print(
            f"{name:<12} {sched.cost:>12.4f} {sched.energy:>12.4f} "
            f"{sched.lost_value:>12.4f} {acc:>5d}/{inst.n}"
        )
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    result = run_pd(inst, delta=args.delta)
    report = audit_run(result)
    print(report.text)
    return 0 if report.ok else 1


def _cmd_figures(_: argparse.Namespace) -> int:
    from ..model.power import PolynomialPower
    from ..chen import schedule_interval
    from ..viz import interval_gantt, speed_profile
    from ..classical.oa import run_oa

    power = PolynomialPower(3.0)
    print("Figure 2a — before the new job:")
    before = schedule_interval([3.0, 1.2, 1.0, 0.8], m=4, start=0.0, end=1.0, power=power)
    print(interval_gantt([before], width=56, m=4))
    print("\nFigure 2b — after a new job of size 1.5:")
    after = schedule_interval(
        [3.0, 1.2, 1.0, 0.8, 1.5], m=4, start=0.0, end=1.0, power=power
    )
    print(interval_gantt([after], width=56, m=4))

    inst = Instance.classical([(0.0, 3.0, 1.5), (1.0, 2.0, 1.2)], m=1, alpha=3.0)
    print("\nFigure 3a — PD:")
    print(speed_profile(run_pd(inst).schedule, width=56, height=6))
    print("\nFigure 3b — OA:")
    print(speed_profile(run_oa(inst).schedule, width=56, height=6))
    return 0


def _cmd_discrete(args: argparse.Namespace) -> int:
    from ..discrete import (
        SpeedSet,
        menu_covering_schedule,
        run_pd_discrete,
        worst_overhead_factor,
    )

    inst = _load_instance(args.instance)
    continuous = run_pd(inst)
    if args.cap is not None:
        menu = SpeedSet.geometric(
            0.02 * args.cap, args.cap, args.levels
        ) if args.levels > 1 else SpeedSet([args.cap])
    else:
        menu = menu_covering_schedule(continuous, args.levels)
    result = run_pd_discrete(inst, menu)
    print(result.summary())
    bound = worst_overhead_factor(menu, inst.alpha)
    print(f"  analytic envelope bound on the overhead: x{bound:.4f}")
    return 0


def _cmd_profit(args: argparse.Namespace) -> int:
    from ..profit import profit_of_result, run_pd_augmented

    inst = _load_instance(args.instance)
    if args.epsilon > 0.0:
        augmented = run_pd_augmented(inst, args.epsilon)
        print(augmented.summary())
    else:
        result = run_pd(inst)
        print(result.schedule.summary())
        print(f"  {profit_of_result(result)}")
    return 0


def _cmd_adversary(args: argparse.Namespace) -> int:
    from ..analysis.adversary import search_adversarial

    seed_inst = _load_instance(args.instance)
    out = search_adversarial([seed_inst], rounds=args.rounds, rng=args.seed)
    print(
        f"hardest certified ratio: {out.ratio:.4f} of bound {out.bound:.4f} "
        f"({100 * out.ratio / out.bound:.1f}%), {out.evaluations} evaluations"
    )
    print(f"hardest instance: {out.instance.n} jobs")
    if args.save:
        save_json(instance_to_dict(out.instance), args.save)
        print(f"written to {args.save}")
    return 0


def _csv(text: str, cast: Callable):
    return [cast(s.strip()) for s in text.split(",") if s.strip()]


def _cmd_sweep(args: argparse.Namespace) -> int:
    from ..analysis.sweeps import SweepCell, format_cells
    from ..engine import BatchRunner, ExperimentSpec, run_experiment

    grid: dict[str, list] = {
        "alpha": _csv(args.alphas, float),
        "m": _csv(args.ms, int),
    }
    if args.value_x:
        grid["value_x"] = _csv(args.value_x, float)
    spec = ExperimentSpec(
        name=f"sweep:{args.family}",
        family=args.family,
        grid=grid,
        algorithms=tuple(_csv(args.algorithms, str)),
        n=args.n,
        seeds=tuple(_csv(args.seeds, int)),
        skip_incapable=True,
    )
    runner = BatchRunner(workers=args.workers, cache=args.cache)
    cells = run_experiment(spec, runner)
    table = [
        SweepCell(
            params={"algorithm": c.algorithm, **c.params},
            mean_cost=c.mean_cost,
            worst_certified_ratio=c.worst_certified_ratio,
            mean_acceptance=c.mean_acceptance,
            runs=c.runs,
        )
        for c in cells
    ]
    print(format_cells(table, title=spec.name))
    stats = runner.stats
    note = f", {stats.deduplicated} deduplicated" if stats.deduplicated else ""
    print(
        f"({stats.computed} cells computed, "
        f"{stats.cache_hits} served from cache{note})"
    )
    if args.json_out:
        payload = {
            "schema": 1,
            "kind": "sweep",
            "experiment": spec.name,
            "cells": [
                {
                    "algorithm": c.algorithm,
                    "params": c.params,
                    "mean_cost": c.mean_cost,
                    "mean_energy": c.mean_energy,
                    "mean_acceptance": c.mean_acceptance,
                    # strict-JSON friendly: no NaN literals in the output
                    "worst_certified_ratio": (
                        None
                        if math.isnan(c.worst_certified_ratio)
                        else c.worst_certified_ratio
                    ),
                    "runs": c.runs,
                }
                for c in cells
            ],
        }
        save_json(payload, args.json_out)
        print(f"cells written to {args.json_out}")
    return 0


_DISPATCH = {
    "generate": _cmd_generate,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "certify": _cmd_certify,
    "figures": _cmd_figures,
    "discrete": _cmd_discrete,
    "profit": _cmd_profit,
    "adversary": _cmd_adversary,
    "sweep": _cmd_sweep,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _DISPATCH[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
