"""ASCII rendering of schedules (regenerates the paper's figures)."""

from .ascii_art import gantt, interval_gantt, segment_gantt, speed_profile

__all__ = ["gantt", "interval_gantt", "segment_gantt", "speed_profile"]
