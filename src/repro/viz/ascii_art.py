"""Text rendering of schedules — regenerates the paper's Figures 2 and 3.

Everything here is pure string manipulation over the library's schedule
objects: a per-processor Gantt chart (who runs where, dedicated vs. pool —
Figure 2's content) and a speed-profile plot (speed over time per
processor — Figure 3's content). No plotting dependency is needed; the
benchmark harness embeds these renderings directly in its output and in
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..chen.mcnaughton import Segment
from ..chen.scheduler import IntervalSchedule
from ..model.schedule import Schedule

__all__ = ["gantt", "speed_profile", "interval_gantt", "segment_gantt"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _job_char(job: int) -> str:
    """Stable single-character label for a job id."""
    alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
    return alphabet[job % len(alphabet)]


def interval_gantt(
    schedules: Sequence[IntervalSchedule], *, width: int = 72, m: int | None = None
) -> str:
    """Gantt chart of realized interval schedules (Figure 2 style).

    Each processor is one row; letters identify jobs, ``.`` is idle.
    Dedicated jobs appear as unbroken runs; pool jobs wrap across the
    pool processors.
    """
    if not schedules:
        return "(empty schedule)"
    t0 = min(s.start for s in schedules)
    t1 = max(s.end for s in schedules)
    span = t1 - t0
    procs = m
    if procs is None:
        procs = 1 + max(
            (seg.processor for s in schedules for seg in s.segments), default=0
        )
    rows = [["."] * width for _ in range(procs)]
    for s in schedules:
        for seg in s.segments:
            a = int(round((seg.start - t0) / span * width))
            b = int(round((seg.end - t0) / span * width))
            b = max(b, a + 1)
            ch = _job_char(seg.job)
            for x in range(a, min(b, width)):
                rows[seg.processor][x] = ch
    lines = [f"CPU {i + 1} |{''.join(row)}|" for i, row in enumerate(rows)]
    axis = f"      {t0:<8.3g}{'':{max(0, width - 16)}}{t1:>8.3g}"
    return "\n".join(lines + [axis])


def gantt(schedule: Schedule, *, width: int = 72) -> str:
    """Gantt chart of a full-horizon schedule."""
    return interval_gantt(schedule.realize(), width=width, m=schedule.instance.m)


def speed_profile(
    schedule: Schedule,
    *,
    width: int = 72,
    height: int = 8,
    processor: int | None = None,
) -> str:
    """Block-character speed-over-time plot (Figure 3 style).

    Plots the speed of the given processor rank (default: the sum over
    processors, which on ``m == 1`` is just the speed). Columns sample
    the horizon uniformly; rows quantize speed into ``height`` levels.
    """
    speeds = schedule.processor_speed_matrix()
    grid = schedule.grid
    t0, t1 = grid.span
    span = t1 - t0

    def speed_at(t: float) -> float:
        k = grid.locate(min(max(t, t0), t1 - 1e-12))
        col = speeds[:, k]
        return float(col[processor]) if processor is not None else float(col.sum())

    samples = [speed_at(t0 + (i + 0.5) / width * span) for i in range(width)]
    peak = max(samples) if samples else 0.0
    if peak <= 0.0:
        return "(idle everywhere)"
    lines: list[str] = []
    for level in range(height, 0, -1):
        row = []
        for s in samples:
            frac = s / peak * height - (level - 1)
            idx = min(len(_BLOCKS) - 1, max(0, int(math.ceil(frac * (len(_BLOCKS) - 1)))))
            row.append(_BLOCKS[idx] if frac > 0 else " ")
        label = f"{peak * level / height:>7.3g} |"
        lines.append(label + "".join(row))
    lines.append(" " * 8 + "-" * width)
    lines.append(f"{'':8}{t0:<10.4g}{'':{max(0, width - 20)}}{t1:>10.4g}")
    return "\n".join(lines)


def segment_gantt(
    segments: Sequence[Segment], *, width: int = 72, m: int | None = None
) -> str:
    """Gantt chart of a bare segment list (discrete schedules, policies).

    Same rendering as :func:`interval_gantt` but for any iterable of
    :class:`~repro.chen.mcnaughton.Segment` — the representation the
    discrete substrate emits after two-level rounding, where one
    continuous run becomes a fast part and a slow part.
    """
    segs = list(segments)
    if not segs:
        return "(empty schedule)"
    t0 = min(s.start for s in segs)
    t1 = max(s.end for s in segs)
    span = t1 - t0
    procs = m
    if procs is None:
        procs = 1 + max(seg.processor for seg in segs)
    rows = [["."] * width for _ in range(procs)]
    for seg in segs:
        a = int(round((seg.start - t0) / span * width))
        b = int(round((seg.end - t0) / span * width))
        b = max(b, a + 1)
        ch = _job_char(seg.job)
        for x in range(a, min(b, width)):
            rows[seg.processor][x] = ch
    lines = [f"CPU {i + 1} |{''.join(row)}|" for i, row in enumerate(rows)]
    axis = f"      {t0:<8.3g}{'':{max(0, width - 16)}}{t1:>8.3g}"
    return "\n".join(lines + [axis])
