"""Zero-copy record transport between worker processes and the runner.

A worker pool's default result channel is a pipe: the worker pickles the
payload, the bytes stream through the ``multiprocessing`` result queue,
and the parent unpickles them. A run-record payload carries a fully
serialized schedule — per-job load rows, grid boundaries — so at 10k
jobs each result is megabytes, and the pipe (one reader thread, byte-
by-byte framing) becomes the bottleneck long before the algorithms do.

This module moves the payload bytes through POSIX shared memory
instead: the worker pickles the payload **once** into a fresh
:class:`multiprocessing.shared_memory.SharedMemory` segment and ships
only a tiny ``("shm", name, nbytes)`` ticket through the pipe; the
parent attaches, reads, and unlinks. The payload dict the parent
decodes is byte-identical to what the pipe would have delivered — the
transport changes *where the bytes travel*, never what they say — so
records, cache keys, and cache contents are unchanged (asserted by the
transport parity tests).

Lifecycle discipline (CPython >= 3.9 registers a segment with the
``resource_tracker`` on *attach* as well as on create):

* worker: create -> write -> ``close()`` -> explicitly **unregister**
  (the parent will own the segment from here; without the unregister
  the worker-side tracker would unlink it at worker exit);
* parent: attach (re-registers) -> read -> ``close()`` -> ``unlink()``
  (which unregisters).

Both halves balance their tracker entries, so no "leaked
shared_memory" warnings and no double-unlink races. If a parent dies
between ticket and decode the segment leaks until its tracker cleans
up — the same failure window the pipe has for buffered results.

Platforms without ``/dev/shm`` (or with it mounted too small) fail the
probe in :func:`shm_available`; every caller then degrades to the
``("pickle", payload)`` wire, which is the historical pipe behavior
exactly. The fallback is also taken per-call if a segment allocation
fails mid-run.
"""

from __future__ import annotations

import pickle
from typing import Any

from ..errors import InvalidParameterError

__all__ = [
    "TRANSPORTS",
    "decode_wire",
    "encode_payload",
    "evaluate_request_wire",
    "resolve_transport",
    "shm_available",
    "wire_bytes",
]

#: Wire protocol for the ticket itself and for payload blobs.
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

TRANSPORTS = ("auto", "shm", "pickle")

_SHM_PROBE: bool | None = None


def _untrack(shm) -> None:
    """Drop a worker-side resource_tracker registration for ``shm``.

    The parent process takes over ownership of the segment; ``shm._name``
    is the tracker's registered key (the OS-level name, leading slash
    included on POSIX).
    """
    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def shm_available() -> bool:
    """Probe (once) whether shared-memory segments work on this host."""
    global _SHM_PROBE
    if _SHM_PROBE is None:
        try:
            from multiprocessing.shared_memory import SharedMemory

            shm = SharedMemory(create=True, size=16)
            shm.buf[:4] = b"ping"
            shm.close()
            shm.unlink()
            _SHM_PROBE = True
        except Exception:
            _SHM_PROBE = False
    return _SHM_PROBE


def resolve_transport(transport: str) -> str:
    """Validate a transport spec and resolve ``"auto"`` to a concrete one."""
    if transport not in TRANSPORTS:
        raise InvalidParameterError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if transport == "auto":
        return "shm" if shm_available() else "pickle"
    return transport


def encode_payload(payload: dict[str, Any], transport: str) -> tuple:
    """Encode a result payload as a wire ticket (worker side).

    Returns ``("shm", name, nbytes)`` or ``("pickle", payload)``. The
    shm path falls back to pickle if segment allocation fails, so a
    full ``/dev/shm`` degrades a run instead of killing it.
    """
    if transport == "shm":
        try:
            from multiprocessing.shared_memory import SharedMemory

            blob = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
            shm = SharedMemory(create=True, size=max(1, len(blob)))
        except pickle.PicklingError:
            raise
        except Exception:
            return ("pickle", payload)
        try:
            shm.buf[: len(blob)] = blob
            name = shm.name
            shm.close()
            _untrack(shm)
            return ("shm", name, len(blob))
        except Exception:
            # The segment exists but no ticket will reference it: release
            # it here or it lives until the resource tracker reaps it at
            # process exit.
            for cleanup in (shm.close, shm.unlink):
                try:
                    cleanup()
                except OSError:
                    pass
    return ("pickle", payload)


def decode_wire(wire: tuple) -> dict[str, Any]:
    """Decode a wire ticket back into the payload dict (parent side).

    Attaching to an shm ticket consumes it: the segment is unlinked
    whether or not the unpickle succeeds.
    """
    kind = wire[0]
    if kind == "pickle":
        return wire[1]
    if kind != "shm":
        raise InvalidParameterError(f"unknown wire kind {kind!r}")
    _, name, nbytes = wire
    from multiprocessing.shared_memory import SharedMemory

    shm = SharedMemory(name=name)
    try:
        blob = bytes(shm.buf[:nbytes])
    finally:
        shm.close()
        shm.unlink()
    return pickle.loads(blob)


def wire_bytes(wire: tuple) -> int:
    """Bytes this ticket pushes through the result pipe.

    What the transport actually saves: an shm ticket is a few dozen
    bytes regardless of payload size, where the pickle wire carries the
    entire serialized record.
    """
    return len(pickle.dumps(wire, protocol=_PICKLE_PROTOCOL))


def evaluate_request_wire(request, transport: str) -> tuple:
    """Worker entry point: evaluate one cell, return its wire ticket.

    Module-level so pools can unpickle it by name, exactly like
    :func:`repro.engine.runner.evaluate_request` — which this wraps
    without touching, so the payload is the identical dict either way.
    """
    from .runner import evaluate_request  # lazy: avoid import cycle

    return encode_payload(evaluate_request(request), transport)
