"""Declarative experiments: parameter grids compiled to batch requests.

An :class:`ExperimentSpec` names *what* to measure — a workload family
(or one fixed instance), a parameter grid, seeds, and algorithms — and
:func:`run_experiment` compiles it into the flat (algorithm × cell ×
seed) request list a :class:`~repro.engine.runner.BatchRunner` executes,
then aggregates the records back into per-cell summaries. The
hand-rolled triple loops of :mod:`repro.analysis.sweeps`, the benchmark
harnesses, and the CLI ``sweep`` subcommand are all this one shape.

Grid parameters are applied by name:

* ``alpha``, ``m`` — forwarded to the family (and, for a fixed base
  instance, applied via :meth:`~repro.model.job.Instance.with_machine`);
* ``value_x`` — scales every job value by the given factor *after*
  generation (the admission S-curve knob);
* any other key — forwarded to the family as a keyword argument.

Cells are emitted in deterministic order: grid axes vary in declaration
order (first axis slowest), algorithms cycle innermost. Seeds replicate
each cell and are aggregated (mean cost/acceptance, worst certified
ratio) — the same statistics the sweeps module always reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Mapping, Sequence

from ..errors import InvalidParameterError
from ..model.job import Instance
from .runner import BatchRunner, RunRecord, RunRequest

__all__ = ["ExperimentSpec", "ExperimentCell", "run_experiment", "resolve_family"]

FamilyFn = Callable[..., Instance]


def resolve_family(family: str | FamilyFn) -> FamilyFn:
    """A workload family by name (or pass a callable through).

    Named families come from :func:`repro.workloads.named_families` —
    the same table the CLI ``generate`` subcommand offers.
    """
    if callable(family):
        return family
    from .. import workloads

    families = workloads.named_families()
    try:
        return families[family]
    except KeyError:
        raise InvalidParameterError(
            f"unknown workload family {family!r}; "
            f"available: {', '.join(sorted(families))}"
        ) from None


@dataclass(frozen=True)
class ExperimentCell:
    """Aggregated measurements of one parameter cell of an experiment."""

    algorithm: str
    params: dict[str, Any]
    mean_cost: float
    mean_energy: float
    mean_acceptance: float
    worst_certified_ratio: float
    runs: int
    records: tuple[RunRecord, ...] = field(repr=False, default=())


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment over a workload family or fixed instance.

    Parameters
    ----------
    name:
        Display/bookkeeping label.
    grid:
        Ordered mapping axis-name → values; the cross product defines
        the cells. May be empty (a single cell).
    algorithms:
        Registry names to evaluate on every cell.
    family:
        Workload generator — a callable ``(n, *, m, alpha, seed,
        **kwargs)`` or a :func:`repro.workloads.named_families` name.
        Mutually exclusive with ``base_instance``.
    base_instance:
        A fixed job set re-run across the grid (only ``m`` / ``alpha`` /
        ``value_x`` axes make sense then); seeds are ignored.
    n, seeds, family_kwargs:
        Forwarded to the family; each cell is replicated per seed.
    transform:
        Optional hook ``(instance, params) -> instance`` applied after
        generation — for derived axes no named parameter covers.
    """

    name: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    algorithms: Sequence[str] = ("pd",)
    family: str | FamilyFn | None = None
    base_instance: Instance | None = None
    n: int = 20
    seeds: Sequence[int] = (0, 1, 2)
    family_kwargs: Mapping[str, Any] = field(default_factory=dict)
    transform: Callable[[Instance, Mapping[str, Any]], Instance] | None = None
    skip_incapable: bool = False

    def __post_init__(self) -> None:
        if (self.family is None) == (self.base_instance is None):
            raise InvalidParameterError(
                "specify exactly one of family= or base_instance="
            )
        if not self.algorithms:
            raise InvalidParameterError("need at least one algorithm")
        if self.family is not None and not list(self.seeds):
            raise InvalidParameterError("need at least one seed")

    # ------------------------------------------------------------------
    def cells(self) -> list[dict[str, Any]]:
        """The parameter dicts of every grid cell, in deterministic order."""
        axes = list(self.grid.items())
        if not axes:
            return [{}]
        names = [name for name, _ in axes]
        return [
            dict(zip(names, combo))
            for combo in product(*(values for _, values in axes))
        ]

    def _build_instance(self, params: Mapping[str, Any], seed: int | None) -> Instance:
        value_x = params.get("value_x")
        family_params = {
            k: v for k, v in params.items() if k != "value_x"
        }
        if self.base_instance is not None:
            inst = self.base_instance
            m = family_params.pop("m", None)
            alpha = family_params.pop("alpha", None)
            if family_params:
                raise InvalidParameterError(
                    f"fixed-instance experiments only support m/alpha/value_x "
                    f"axes, got {sorted(family_params)}"
                )
            if m is not None or alpha is not None:
                inst = inst.with_machine(m=m, alpha=alpha)
        else:
            family = resolve_family(self.family)
            kwargs = dict(self.family_kwargs)
            kwargs.update(family_params)
            inst = family(self.n, seed=seed, **kwargs)
        if value_x is not None:
            inst = inst.with_values([j.value * value_x for j in inst.jobs])
        if self.transform is not None:
            inst = self.transform(inst, dict(params))
        return inst

    def requests(self) -> list[RunRequest]:
        """Compile the spec to the flat batch-request list.

        With ``skip_incapable=True``, (algorithm × cell) pairs the
        algorithm's registry capabilities rule out (today: ``m > 1`` for
        a single-processor algorithm) are dropped instead of raising —
        the capability-aware analogue of the old hand-written
        try/except loops.
        """
        from .registry import REGISTRY

        seeds: Sequence[int | None] = (
            [None] if self.base_instance is not None else list(self.seeds)
        )
        out: list[RunRequest] = []
        for cell_index, params in enumerate(self.cells()):
            for seed in seeds:
                inst = self._build_instance(params, seed)
                for algorithm in self.algorithms:
                    if (
                        self.skip_incapable
                        and inst.m > 1
                        and not REGISTRY.info(algorithm).multiprocessor
                    ):
                        continue
                    tag = {
                        "cell": cell_index,
                        "params": dict(params),
                        "seed": seed,
                        "experiment": self.name,
                    }
                    out.append(RunRequest(algorithm, inst, tag=tag))
        return out


def run_experiment(
    spec: ExperimentSpec, runner: BatchRunner | None = None
) -> list[ExperimentCell]:
    """Execute a spec and aggregate per-(cell, algorithm) statistics.

    Cell order is the spec's deterministic grid order with one entry per
    algorithm; each entry aggregates that cell's seed replicates.
    """
    runner = runner or BatchRunner()
    requests = spec.requests()
    records = runner.run(requests)

    # Regroup seed replicates by (grid cell, algorithm) via the request
    # tags — robust to cells dropped by skip_incapable.
    groups: dict[tuple[int, str], list] = {}
    for record in records:
        groups.setdefault((record.tag["cell"], record.algorithm), []).append(record)

    cells: list[ExperimentCell] = []
    for cell_index, params in enumerate(spec.cells()):
        for algorithm in spec.algorithms:
            reps = groups.get((cell_index, algorithm))
            if not reps:
                continue
            cells.append(
                ExperimentCell(
                    algorithm=algorithm,
                    params=dict(params),
                    mean_cost=sum(r.cost for r in reps) / len(reps),
                    mean_energy=sum(r.energy for r in reps) / len(reps),
                    mean_acceptance=sum(r.acceptance for r in reps) / len(reps),
                    worst_certified_ratio=max(r.certified_ratio for r in reps),
                    runs=len(reps),
                    records=tuple(reps),
                )
            )
    return cells
