"""Declarative experiments: parameter grids compiled to batch requests.

An :class:`ExperimentSpec` names *what* to measure — a workload source,
a parameter grid, seeds, and algorithms — and :func:`run_experiment`
compiles it into the flat (workload × cell × seed × algorithm) request
list a :class:`~repro.engine.runner.BatchRunner` executes, then
aggregates the records back into per-cell summaries. The hand-rolled
triple loops of :mod:`repro.analysis.sweeps`, the benchmark harnesses,
and the CLI ``sweep`` subcommand are all this one shape.

The workload source is exactly one of:

* ``family=`` — one generator (a callable, a registry name, or a
  parameterized spec like ``"heavy-tail?pareto_shape=2.0"``) swept over
  the grid;
* ``base_instance=`` — one fixed job set re-run across the grid;
* ``workloads=`` — a *workload axis*: a list of registry specs
  (``["poisson", "heavy-tail?n=64&alpha=3.0"]``), each swept over the
  whole grid, labeling its cells with the canonical spec name. Specs
  resolve through :data:`repro.workloads.registry.WORKLOADS`, so every
  spelling of the same workload builds the identical instance — and
  therefore hashes to the identical batch-runner cache key.

Grid parameters are applied by name:

* ``alpha``, ``m`` — forwarded to the family (and, for a fixed base
  instance, applied via :meth:`~repro.model.job.Instance.with_machine`);
* ``value_x`` — scales every job value by the given factor *after*
  generation (the admission S-curve knob);
* any other key — forwarded to the family as a keyword argument.

Cells are emitted in deterministic order: workloads vary slowest, then
grid axes in declaration order, algorithms cycle innermost. Seeds
replicate each cell and are aggregated (mean cost/acceptance, worst
certified ratio) — the same statistics the sweeps module always
reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Mapping, Sequence

from ..errors import InvalidParameterError
from ..model.job import Instance
from .registry import canonical_variant_name, parse_variant_name
from .runner import BatchRunner, RunRecord, RunRequest

__all__ = [
    "ExperimentSpec",
    "ExperimentCell",
    "run_experiment",
    "aggregate_records",
    "resolve_family",
]

FamilyFn = Callable[..., Instance]

#: Grid/variant axis names that would collide with the keywords
#: :meth:`ExperimentSpec.requests` itself passes to the family call
#: (``family(n, seed=..., **params)``) or with the cell labels the
#: workload axis injects. Rejected up front with a clear error instead
#: of dying with an opaque ``TypeError`` deep in the request compiler;
#: replication knobs have dedicated spec fields.
RESERVED_AXIS_NAMES = frozenset({"n", "seed", "workload"})


def _grid_cells(axes: Sequence[tuple[str, Sequence[Any]]]) -> list[dict[str, Any]]:
    """Cross product of named axes, first axis varying slowest."""
    if not axes:
        return [{}]
    names = [name for name, _ in axes]
    return [
        dict(zip(names, combo))
        for combo in product(*(values for _, values in axes))
    ]


def _worst_ratio(values: Sequence[float]) -> float:
    """NaN-aware worst (largest) certified ratio over replicates.

    ``max()`` silently keeps or drops a ``NaN`` depending on where it
    sits in the argument order; here any ``NaN`` replicate poisons the
    aggregate instead, so one uncertified run can neither hide behind
    nor fake the worst certified ratio.
    """
    out = -math.inf
    for value in values:
        value = float(value)
        if math.isnan(value):
            return math.nan
        out = max(out, value)
    return out


def resolve_family(family: str | FamilyFn) -> FamilyFn:
    """A workload family by name or parameterized spec (or a callable).

    Named families resolve through the workload registry
    (:data:`repro.workloads.registry.WORKLOADS`) — the same table the
    CLI ``generate`` subcommand offers. A parameterized spec
    (``"heavy-tail?pareto_shape=2.0"``) resolves to the base generator
    with those knobs bound; ``n`` and ``seed`` may not be pinned here
    because the spec fields (``n=``, ``seeds=``) own them — pin them on
    a ``workloads=`` axis entry instead, where per-workload replication
    is well defined.
    """
    if callable(family):
        return family
    from ..workloads.registry import WORKLOADS

    info = WORKLOADS.info(family)
    if "n" in info.params or "seed" in info.params:
        raise InvalidParameterError(
            f"workload spec {family!r} pins n/seed, but in the family= "
            "slot those are controlled by the spec fields (n=, seeds=); "
            "drop them here or move the spec to the workloads= axis"
        )
    if not info.params:
        return info.generator
    # The bound method already folds the pinned parameters in (and
    # raises on clashes) with the family-call signature.
    return info.build


@dataclass(frozen=True)
class ExperimentCell:
    """Aggregated measurements of one parameter cell of an experiment."""

    algorithm: str
    params: dict[str, Any]
    mean_cost: float
    mean_energy: float
    mean_acceptance: float
    worst_certified_ratio: float
    runs: int
    records: tuple[RunRecord, ...] = field(repr=False, default=())


@dataclass(frozen=True)
class _WorkloadPlan:
    """One resolved ``workloads=`` axis entry, ready to generate from."""

    label: str
    generator: FamilyFn = field(repr=False)
    n: int
    seeds: tuple[int, ...]
    kwargs: Mapping[str, Any]


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment over workloads or a fixed instance.

    Parameters
    ----------
    name:
        Display/bookkeeping label.
    grid:
        Ordered mapping axis-name → values; the cross product defines
        the cells. May be empty (a single cell).
    algorithms:
        Registry names to evaluate on every cell; variant specs
        (``pd?delta=0.05``) are accepted verbatim.
    variants:
        Ordered mapping of algorithm-parameter axes (e.g.
        ``{"delta": [0.01, 0.05]}``); the cross product is applied to
        *every* name in ``algorithms`` as a variant spec, turning
        delta/epsilon ablations into declarative grids. Distinct from
        ``grid``: grid axes parameterize the *instances*, variant axes
        parameterize the *algorithms* (and are folded into each cell's
        cache key through the variant name).
    family:
        Workload generator — a callable ``(n, *, m, alpha, seed,
        **kwargs)``, a registry name, or a parameterized spec (see
        :func:`resolve_family`). Mutually exclusive with
        ``base_instance`` and ``workloads``.
    base_instance:
        A fixed job set re-run across the grid (only ``m`` / ``alpha`` /
        ``value_x`` axes make sense then); seeds are ignored.
    workloads:
        The *workload axis*: registry specs
        (``["poisson", "heavy-tail?n=64&alpha=3.0"]``), each swept over
        the full grid and labeling its cells with the canonical spec
        name (``params["workload"]``). A spec may pin ``n`` (overriding
        ``n=`` for that workload) and ``seed`` (collapsing that
        workload's replicates to the pinned seed); its other knobs
        override ``family_kwargs`` and may not collide with grid axes.
        Mutually exclusive with ``family`` and ``base_instance``.
    n, seeds, family_kwargs:
        Forwarded to the generator; each cell is replicated per seed.
    transform:
        Optional hook ``(instance, params) -> instance`` applied after
        generation — for derived axes no named parameter covers.
    batch_mode:
        Execution strategy threaded into every compiled request
        (``"arrival"`` / ``"epoch"``; ``None`` keeps the ambient
        default). Bit-parity-tested to never change a record, so it is
        *not* an experiment axis — it does not label cells or cache
        keys, it only picks the main-loop implementation.
    """

    name: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    algorithms: Sequence[str] = ("pd",)
    variants: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    family: str | FamilyFn | None = None
    base_instance: Instance | None = None
    workloads: Sequence[str] = ()
    n: int = 20
    seeds: Sequence[int] = (0, 1, 2)
    family_kwargs: Mapping[str, Any] = field(default_factory=dict)
    transform: Callable[[Instance, Mapping[str, Any]], Instance] | None = None
    skip_incapable: bool = False
    batch_mode: str | None = None

    def __post_init__(self) -> None:
        sources = sum(
            1
            for provided in (
                self.family is not None,
                self.base_instance is not None,
                bool(self.workloads),
            )
            if provided
        )
        if sources != 1:
            raise InvalidParameterError(
                "specify exactly one of family=, base_instance=, or "
                "workloads="
            )
        if self.batch_mode not in (None, "arrival", "epoch"):
            raise InvalidParameterError(
                f"batch_mode must be 'arrival', 'epoch', or None, "
                f"got {self.batch_mode!r}"
            )
        if not self.algorithms:
            raise InvalidParameterError("need at least one algorithm")
        if self.base_instance is None and not list(self.seeds):
            raise InvalidParameterError("need at least one seed")
        for entry in self.workloads:
            if not isinstance(entry, str):
                raise InvalidParameterError(
                    f"workloads= entries must be registry spec strings, "
                    f"got {entry!r}; pass a callable via family= instead"
                )
        for axis in ("grid", "variants"):
            mapping = getattr(self, axis)
            reserved = RESERVED_AXIS_NAMES.intersection(mapping)
            if reserved:
                raise InvalidParameterError(
                    f"reserved {axis} axis name(s) {sorted(reserved)}: "
                    "'n' and 'seed' are spec fields (n=, seeds=) and "
                    "'workload' labels the workloads= axis — none are "
                    "sweepable axes"
                )
            empty = [key for key, values in mapping.items() if not list(values)]
            if empty:
                raise InvalidParameterError(
                    f"{axis} axis name(s) {sorted(empty)} have no values — "
                    "an empty axis would silently produce an empty sweep"
                )
        collisions = set(self.grid).intersection(self.variants)
        if collisions:
            raise InvalidParameterError(
                f"axis name(s) {sorted(collisions)} appear in both grid= "
                "(instance parameters) and variants= (algorithm "
                "parameters); rename one so cell summaries stay unambiguous"
            )

    # ------------------------------------------------------------------
    def cells(self) -> list[dict[str, Any]]:
        """The parameter dicts of every grid cell, in deterministic order."""
        return _grid_cells(list(self.grid.items()))

    def variant_cells(self) -> list[dict[str, Any]]:
        """The algorithm-parameter dicts of the ``variants`` axes."""
        return _grid_cells(list(self.variants.items()))

    def algorithm_names(self) -> list[str]:
        """Effective algorithm list: every name × every variant cell.

        Every entry is resolved through the registry to its *canonical*
        variant name, so inline specs (``pd?delta=5e-2``) and axis-built
        ones label records — and group into cells — identically. Two
        spellings of the same effective algorithm are an error (they
        would silently merge into one cell with doubled replicates).
        Names already carrying a variant spec are merged with the axis
        parameters; a clash between the two is an error too (the axis
        would silently shadow the inline value otherwise).
        """
        from .registry import REGISTRY

        combos = self.variant_cells()
        out: list[str] = []
        seen: set[str] = set()
        for name in self.algorithms:
            base, raw = parse_variant_name(name)
            for combo in combos:
                if combo:
                    clashes = set(raw).intersection(combo)
                    if clashes:
                        raise InvalidParameterError(
                            f"variant axis {sorted(clashes)} clashes with "
                            f"parameters already inline in algorithm {name!r}"
                        )
                    spec_name = canonical_variant_name(base, {**raw, **combo})
                else:
                    spec_name = name
                canonical = REGISTRY.info(spec_name).name
                if canonical in seen:
                    raise InvalidParameterError(
                        f"algorithm {canonical!r} appears more than once in "
                        "the effective (algorithms x variants) list; "
                        "duplicates would double-count replicates"
                    )
                seen.add(canonical)
                out.append(canonical)
        return out

    def workload_plans(self) -> list[_WorkloadPlan]:
        """Resolve the ``workloads=`` axis entries, loudly.

        Every entry resolves through the workload registry to its
        canonical name (so spelling variants label — and cache — as one
        workload); pinned ``n``/``seed`` values are split out from the
        generator knobs; a knob that is also a grid axis is rejected
        (the generator would receive it twice with conflicting values).
        Duplicate canonical names are an error, symmetric to the
        duplicate check on the algorithm × variant list.
        """
        from ..workloads.registry import WORKLOADS

        plans: list[_WorkloadPlan] = []
        seen: set[str] = set()
        for entry in self.workloads:
            info = WORKLOADS.info(entry)
            if info.name in seen:
                raise InvalidParameterError(
                    f"workload {info.name!r} appears more than once on the "
                    "workloads= axis; duplicates would double-count cells"
                )
            seen.add(info.name)
            kwargs = dict(info.params)
            n = kwargs.pop("n", self.n)
            pinned_seed = kwargs.pop("seed", None)
            clashes = set(kwargs).intersection(self.grid)
            if clashes:
                raise InvalidParameterError(
                    f"workload {entry!r} pins {sorted(clashes)}, which are "
                    "also grid axes; the generator would receive them twice"
                )
            # Every grid axis and spec-level family kwarg must be a knob
            # this family accepts — the registry's parameter table makes
            # that checkable up front, instead of a TypeError deep
            # inside generation (one kwargs dict applies to N
            # heterogeneous families here).
            unknown = (
                (set(self.grid) | set(self.family_kwargs))
                - {"value_x"}
                - set(info.spec_params)
            )
            if unknown:
                raise InvalidParameterError(
                    f"grid axis(es)/family kwarg(s) {sorted(unknown)} are "
                    f"not parameters of workload {info.base!r}; accepted: "
                    f"{', '.join(sorted(info.spec_params))}"
                )
            seeds = (
                (pinned_seed,)
                if "seed" in info.params
                else tuple(self.seeds)
            )
            plans.append(
                _WorkloadPlan(
                    label=info.name,
                    generator=info.generator,
                    n=n,
                    seeds=seeds,
                    kwargs=kwargs,
                )
            )
        return plans

    def _build_instance(
        self,
        params: Mapping[str, Any],
        seed: int | None,
        plan: _WorkloadPlan | None = None,
    ) -> Instance:
        value_x = params.get("value_x")
        family_params = {
            k: v for k, v in params.items() if k != "value_x"
        }
        if self.base_instance is not None:
            inst = self.base_instance
            m = family_params.pop("m", None)
            alpha = family_params.pop("alpha", None)
            if family_params:
                raise InvalidParameterError(
                    f"fixed-instance experiments only support m/alpha/value_x "
                    f"axes, got {sorted(family_params)}"
                )
            if m is not None or alpha is not None:
                inst = inst.with_machine(m=m, alpha=alpha)
        elif plan is not None:
            # Workload-axis cell: the spec's pinned knobs override the
            # spec-level family_kwargs; grid axes were checked disjoint.
            kwargs = {**self.family_kwargs, **plan.kwargs, **family_params}
            inst = plan.generator(plan.n, seed=seed, **kwargs)
        else:
            family = resolve_family(self.family)
            kwargs = dict(self.family_kwargs)
            kwargs.update(family_params)
            inst = family(self.n, seed=seed, **kwargs)
        if value_x is not None:
            inst = inst.with_values([j.value * value_x for j in inst.jobs])
        if self.transform is not None:
            inst = self.transform(inst, dict(params))
        return inst

    def fingerprint(self, requests: Sequence[RunRequest] | None = None) -> str:
        """Content address of the compiled request list.

        Two processes agree on this hash iff they compiled the identical
        (algorithm × instance) request list in the identical order —
        exactly the precondition for cooperating on one sweep. The
        work-stealing CLI uses it as the shared claim-table id, so a
        worker whose spec resolves differently (version skew, a mutated
        registry) lands on a *different* claim table and the mismatch
        surfaces loudly at merge time instead of silently interleaving
        mismatched grids.

        Pass ``requests`` (an already-compiled :meth:`requests` list) to
        skip recompiling the grid; it must be this spec's own output.
        """
        from ..io.serialize import stable_hash
        from .runner import request_key

        if requests is None:
            requests = self.requests()
        return stable_hash(
            {
                "kind": "experiment-fingerprint",
                "name": self.name,
                "keys": [
                    request_key(request.algorithm, request.instance)
                    for request in requests
                ],
            }
        )

    def requests(self) -> list[RunRequest]:
        """Compile the spec to the flat batch-request list.

        Deterministic order: workloads slowest (when the axis is used),
        then grid cells in declaration order, seeds, algorithms
        innermost. ``tag["cell"]`` enumerates (workload × grid cell)
        combinations, so aggregation groups workload-axis runs without
        any special casing.

        With ``skip_incapable=True``, (algorithm × cell) pairs the
        algorithm's registry capabilities rule out (today: ``m > 1`` for
        a single-processor algorithm) are dropped instead of raising —
        the capability-aware analogue of the old hand-written
        try/except loops.
        """
        from .registry import REGISTRY

        # Resolve once per effective algorithm: the canonical name labels
        # the request, and the registry's parsed parameters become the
        # variant tag — so inline specs and axis-built ones aggregate
        # identically (cell params always include the knob values).
        algorithms = [
            (info.name, dict(info.params), info.multiprocessor)
            for info in map(REGISTRY.info, self.algorithm_names())
        ]
        plans: Sequence[_WorkloadPlan | None] = (
            self.workload_plans() if self.workloads else [None]
        )
        base_seeds: Sequence[int | None] = (
            [None] if self.base_instance is not None else list(self.seeds)
        )
        out: list[RunRequest] = []
        cell_id = 0
        for plan in plans:
            seeds = plan.seeds if plan is not None else base_seeds
            for params in self.cells():
                for seed in seeds:
                    inst = self._build_instance(params, seed, plan)
                    for algorithm, variant, multiprocessor in algorithms:
                        if (
                            self.skip_incapable
                            and inst.m > 1
                            and not multiprocessor
                        ):
                            continue
                        cell_params = dict(params)
                        if plan is not None:
                            cell_params = {"workload": plan.label, **cell_params}
                        tag = {
                            "cell": cell_id,
                            "params": cell_params,
                            "variant": variant,
                            "seed": seed,
                            "experiment": self.name,
                        }
                        out.append(
                            RunRequest(
                                algorithm,
                                inst,
                                tag=tag,
                                batch=self.batch_mode,
                            )
                        )
                cell_id += 1
        return out


def aggregate_records(records: Sequence[RunRecord]) -> list[ExperimentCell]:
    """Aggregate spec-tagged records into per-(cell, algorithm) summaries.

    Seed replicates are regrouped by (grid cell, algorithm) via the
    request tags — robust to cells dropped by ``skip_incapable`` —
    in first-appearance order, which for records in request order is
    exactly the spec's deterministic grid order. Because the grouping
    needs only the tags, this also works on records merged back from
    shard files, and a merged sharded run aggregates bit-identically to
    an unsharded one.

    A cell's ``params`` merges its grid parameters with its variant
    (algorithm) parameters; the reserved-axis and collision checks in
    :class:`ExperimentSpec` keep that union unambiguous. The worst
    certified ratio is NaN-aware: one uncertified replicate makes the
    aggregate ``NaN`` rather than a position-dependent accident of
    ``max()``.
    """
    groups: dict[tuple[int, str], list[RunRecord]] = {}
    for record in records:
        if record.tag is None or "cell" not in record.tag:
            raise InvalidParameterError(
                "aggregate_records needs spec-tagged records (tag['cell']); "
                "got an untagged record — was this batch built by hand?"
            )
        groups.setdefault((record.tag["cell"], record.algorithm), []).append(
            record
        )

    cells: list[ExperimentCell] = []
    for (_, algorithm), reps in groups.items():
        tag = reps[0].tag
        params = dict(tag.get("params", {}))
        params.update(tag.get("variant") or {})
        cells.append(
            ExperimentCell(
                algorithm=algorithm,
                params=params,
                mean_cost=sum(r.cost for r in reps) / len(reps),
                mean_energy=sum(r.energy for r in reps) / len(reps),
                mean_acceptance=sum(r.acceptance for r in reps) / len(reps),
                worst_certified_ratio=_worst_ratio(
                    [r.certified_ratio for r in reps]
                ),
                runs=len(reps),
                records=tuple(reps),
            )
        )
    return cells


def run_experiment(
    spec: ExperimentSpec,
    runner: BatchRunner | None = None,
    *,
    progress: Callable[[RunRecord, int, int], None] | None = None,
) -> list[ExperimentCell]:
    """Execute a spec and aggregate per-(cell, algorithm) statistics.

    Cell order is the spec's deterministic grid order with one entry per
    (algorithm × variant); each entry aggregates that cell's seed
    replicates.

    ``progress(record, done, total)`` (if given) fires once per record
    in completion order as the runner streams results — the CLI's
    ``--progress`` ticker and any dashboard hook in here without
    changing what the function returns.
    """
    runner = runner or BatchRunner()
    return aggregate_records(runner.run(spec.requests(), on_record=progress))
