"""Declarative experiments: parameter grids compiled to batch requests.

An :class:`ExperimentSpec` names *what* to measure — a workload family
(or one fixed instance), a parameter grid, seeds, and algorithms — and
:func:`run_experiment` compiles it into the flat (algorithm × cell ×
seed) request list a :class:`~repro.engine.runner.BatchRunner` executes,
then aggregates the records back into per-cell summaries. The
hand-rolled triple loops of :mod:`repro.analysis.sweeps`, the benchmark
harnesses, and the CLI ``sweep`` subcommand are all this one shape.

Grid parameters are applied by name:

* ``alpha``, ``m`` — forwarded to the family (and, for a fixed base
  instance, applied via :meth:`~repro.model.job.Instance.with_machine`);
* ``value_x`` — scales every job value by the given factor *after*
  generation (the admission S-curve knob);
* any other key — forwarded to the family as a keyword argument.

Cells are emitted in deterministic order: grid axes vary in declaration
order (first axis slowest), algorithms cycle innermost. Seeds replicate
each cell and are aggregated (mean cost/acceptance, worst certified
ratio) — the same statistics the sweeps module always reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Mapping, Sequence

from ..errors import InvalidParameterError
from ..model.job import Instance
from .registry import canonical_variant_name, parse_variant_name
from .runner import BatchRunner, RunRecord, RunRequest

__all__ = [
    "ExperimentSpec",
    "ExperimentCell",
    "run_experiment",
    "aggregate_records",
    "resolve_family",
]

FamilyFn = Callable[..., Instance]

#: Grid/variant axis names that would collide with the keywords
#: :meth:`ExperimentSpec.requests` itself passes to the family call
#: (``family(n, seed=..., **params)``). Rejected up front with a clear
#: error instead of dying with an opaque ``TypeError`` deep in the
#: request compiler; replication knobs have dedicated spec fields.
RESERVED_AXIS_NAMES = frozenset({"n", "seed"})


def _grid_cells(axes: Sequence[tuple[str, Sequence[Any]]]) -> list[dict[str, Any]]:
    """Cross product of named axes, first axis varying slowest."""
    if not axes:
        return [{}]
    names = [name for name, _ in axes]
    return [
        dict(zip(names, combo))
        for combo in product(*(values for _, values in axes))
    ]


def _worst_ratio(values: Sequence[float]) -> float:
    """NaN-aware worst (largest) certified ratio over replicates.

    ``max()`` silently keeps or drops a ``NaN`` depending on where it
    sits in the argument order; here any ``NaN`` replicate poisons the
    aggregate instead, so one uncertified run can neither hide behind
    nor fake the worst certified ratio.
    """
    out = -math.inf
    for value in values:
        value = float(value)
        if math.isnan(value):
            return math.nan
        out = max(out, value)
    return out


def resolve_family(family: str | FamilyFn) -> FamilyFn:
    """A workload family by name (or pass a callable through).

    Named families come from :func:`repro.workloads.named_families` —
    the same table the CLI ``generate`` subcommand offers.
    """
    if callable(family):
        return family
    from .. import workloads

    families = workloads.named_families()
    try:
        return families[family]
    except KeyError:
        raise InvalidParameterError(
            f"unknown workload family {family!r}; "
            f"available: {', '.join(sorted(families))}"
        ) from None


@dataclass(frozen=True)
class ExperimentCell:
    """Aggregated measurements of one parameter cell of an experiment."""

    algorithm: str
    params: dict[str, Any]
    mean_cost: float
    mean_energy: float
    mean_acceptance: float
    worst_certified_ratio: float
    runs: int
    records: tuple[RunRecord, ...] = field(repr=False, default=())


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment over a workload family or fixed instance.

    Parameters
    ----------
    name:
        Display/bookkeeping label.
    grid:
        Ordered mapping axis-name → values; the cross product defines
        the cells. May be empty (a single cell).
    algorithms:
        Registry names to evaluate on every cell; variant specs
        (``pd?delta=0.05``) are accepted verbatim.
    variants:
        Ordered mapping of algorithm-parameter axes (e.g.
        ``{"delta": [0.01, 0.05]}``); the cross product is applied to
        *every* name in ``algorithms`` as a variant spec, turning
        delta/epsilon ablations into declarative grids. Distinct from
        ``grid``: grid axes parameterize the *instances*, variant axes
        parameterize the *algorithms* (and are folded into each cell's
        cache key through the variant name).
    family:
        Workload generator — a callable ``(n, *, m, alpha, seed,
        **kwargs)`` or a :func:`repro.workloads.named_families` name.
        Mutually exclusive with ``base_instance``.
    base_instance:
        A fixed job set re-run across the grid (only ``m`` / ``alpha`` /
        ``value_x`` axes make sense then); seeds are ignored.
    n, seeds, family_kwargs:
        Forwarded to the family; each cell is replicated per seed.
    transform:
        Optional hook ``(instance, params) -> instance`` applied after
        generation — for derived axes no named parameter covers.
    """

    name: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    algorithms: Sequence[str] = ("pd",)
    variants: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    family: str | FamilyFn | None = None
    base_instance: Instance | None = None
    n: int = 20
    seeds: Sequence[int] = (0, 1, 2)
    family_kwargs: Mapping[str, Any] = field(default_factory=dict)
    transform: Callable[[Instance, Mapping[str, Any]], Instance] | None = None
    skip_incapable: bool = False

    def __post_init__(self) -> None:
        if (self.family is None) == (self.base_instance is None):
            raise InvalidParameterError(
                "specify exactly one of family= or base_instance="
            )
        if not self.algorithms:
            raise InvalidParameterError("need at least one algorithm")
        if self.family is not None and not list(self.seeds):
            raise InvalidParameterError("need at least one seed")
        for axis in ("grid", "variants"):
            mapping = getattr(self, axis)
            reserved = RESERVED_AXIS_NAMES.intersection(mapping)
            if reserved:
                raise InvalidParameterError(
                    f"reserved {axis} axis name(s) {sorted(reserved)}: "
                    "'n' and 'seed' are spec fields (n=, seeds=), not "
                    "sweepable axes — the family call would receive them "
                    "twice"
                )
            empty = [key for key, values in mapping.items() if not list(values)]
            if empty:
                raise InvalidParameterError(
                    f"{axis} axis name(s) {sorted(empty)} have no values — "
                    "an empty axis would silently produce an empty sweep"
                )
        collisions = set(self.grid).intersection(self.variants)
        if collisions:
            raise InvalidParameterError(
                f"axis name(s) {sorted(collisions)} appear in both grid= "
                "(instance parameters) and variants= (algorithm "
                "parameters); rename one so cell summaries stay unambiguous"
            )

    # ------------------------------------------------------------------
    def cells(self) -> list[dict[str, Any]]:
        """The parameter dicts of every grid cell, in deterministic order."""
        return _grid_cells(list(self.grid.items()))

    def variant_cells(self) -> list[dict[str, Any]]:
        """The algorithm-parameter dicts of the ``variants`` axes."""
        return _grid_cells(list(self.variants.items()))

    def algorithm_names(self) -> list[str]:
        """Effective algorithm list: every name × every variant cell.

        Every entry is resolved through the registry to its *canonical*
        variant name, so inline specs (``pd?delta=5e-2``) and axis-built
        ones label records — and group into cells — identically. Two
        spellings of the same effective algorithm are an error (they
        would silently merge into one cell with doubled replicates).
        Names already carrying a variant spec are merged with the axis
        parameters; a clash between the two is an error too (the axis
        would silently shadow the inline value otherwise).
        """
        from .registry import REGISTRY

        combos = self.variant_cells()
        out: list[str] = []
        seen: set[str] = set()
        for name in self.algorithms:
            base, raw = parse_variant_name(name)
            for combo in combos:
                if combo:
                    clashes = set(raw).intersection(combo)
                    if clashes:
                        raise InvalidParameterError(
                            f"variant axis {sorted(clashes)} clashes with "
                            f"parameters already inline in algorithm {name!r}"
                        )
                    spec_name = canonical_variant_name(base, {**raw, **combo})
                else:
                    spec_name = name
                canonical = REGISTRY.info(spec_name).name
                if canonical in seen:
                    raise InvalidParameterError(
                        f"algorithm {canonical!r} appears more than once in "
                        "the effective (algorithms x variants) list; "
                        "duplicates would double-count replicates"
                    )
                seen.add(canonical)
                out.append(canonical)
        return out

    def _build_instance(self, params: Mapping[str, Any], seed: int | None) -> Instance:
        value_x = params.get("value_x")
        family_params = {
            k: v for k, v in params.items() if k != "value_x"
        }
        if self.base_instance is not None:
            inst = self.base_instance
            m = family_params.pop("m", None)
            alpha = family_params.pop("alpha", None)
            if family_params:
                raise InvalidParameterError(
                    f"fixed-instance experiments only support m/alpha/value_x "
                    f"axes, got {sorted(family_params)}"
                )
            if m is not None or alpha is not None:
                inst = inst.with_machine(m=m, alpha=alpha)
        else:
            family = resolve_family(self.family)
            kwargs = dict(self.family_kwargs)
            kwargs.update(family_params)
            inst = family(self.n, seed=seed, **kwargs)
        if value_x is not None:
            inst = inst.with_values([j.value * value_x for j in inst.jobs])
        if self.transform is not None:
            inst = self.transform(inst, dict(params))
        return inst

    def requests(self) -> list[RunRequest]:
        """Compile the spec to the flat batch-request list.

        With ``skip_incapable=True``, (algorithm × cell) pairs the
        algorithm's registry capabilities rule out (today: ``m > 1`` for
        a single-processor algorithm) are dropped instead of raising —
        the capability-aware analogue of the old hand-written
        try/except loops.
        """
        from .registry import REGISTRY

        seeds: Sequence[int | None] = (
            [None] if self.base_instance is not None else list(self.seeds)
        )
        # Resolve once per effective algorithm: the canonical name labels
        # the request, and the registry's parsed parameters become the
        # variant tag — so inline specs and axis-built ones aggregate
        # identically (cell params always include the knob values).
        algorithms = [
            (info.name, dict(info.params), info.multiprocessor)
            for info in map(REGISTRY.info, self.algorithm_names())
        ]
        out: list[RunRequest] = []
        for cell_index, params in enumerate(self.cells()):
            for seed in seeds:
                inst = self._build_instance(params, seed)
                for algorithm, variant, multiprocessor in algorithms:
                    if self.skip_incapable and inst.m > 1 and not multiprocessor:
                        continue
                    tag = {
                        "cell": cell_index,
                        "params": dict(params),
                        "variant": variant,
                        "seed": seed,
                        "experiment": self.name,
                    }
                    out.append(RunRequest(algorithm, inst, tag=tag))
        return out


def aggregate_records(records: Sequence[RunRecord]) -> list[ExperimentCell]:
    """Aggregate spec-tagged records into per-(cell, algorithm) summaries.

    Seed replicates are regrouped by (grid cell, algorithm) via the
    request tags — robust to cells dropped by ``skip_incapable`` —
    in first-appearance order, which for records in request order is
    exactly the spec's deterministic grid order. Because the grouping
    needs only the tags, this also works on records merged back from
    shard files, and a merged sharded run aggregates bit-identically to
    an unsharded one.

    A cell's ``params`` merges its grid parameters with its variant
    (algorithm) parameters; the reserved-axis and collision checks in
    :class:`ExperimentSpec` keep that union unambiguous. The worst
    certified ratio is NaN-aware: one uncertified replicate makes the
    aggregate ``NaN`` rather than a position-dependent accident of
    ``max()``.
    """
    groups: dict[tuple[int, str], list[RunRecord]] = {}
    for record in records:
        if record.tag is None or "cell" not in record.tag:
            raise InvalidParameterError(
                "aggregate_records needs spec-tagged records (tag['cell']); "
                "got an untagged record — was this batch built by hand?"
            )
        groups.setdefault((record.tag["cell"], record.algorithm), []).append(
            record
        )

    cells: list[ExperimentCell] = []
    for (_, algorithm), reps in groups.items():
        tag = reps[0].tag
        params = dict(tag.get("params", {}))
        params.update(tag.get("variant") or {})
        cells.append(
            ExperimentCell(
                algorithm=algorithm,
                params=params,
                mean_cost=sum(r.cost for r in reps) / len(reps),
                mean_energy=sum(r.energy for r in reps) / len(reps),
                mean_acceptance=sum(r.acceptance for r in reps) / len(reps),
                worst_certified_ratio=_worst_ratio(
                    [r.certified_ratio for r in reps]
                ),
                runs=len(reps),
                records=tuple(reps),
            )
        )
    return cells


def run_experiment(
    spec: ExperimentSpec, runner: BatchRunner | None = None
) -> list[ExperimentCell]:
    """Execute a spec and aggregate per-(cell, algorithm) statistics.

    Cell order is the spec's deterministic grid order with one entry per
    (algorithm × variant); each entry aggregates that cell's seed
    replicates.
    """
    runner = runner or BatchRunner()
    return aggregate_records(runner.run(spec.requests()))
