"""Network cache fabric clients: HTTP cache backend and claim table.

The server side lives in :mod:`repro.io.server` (a thin
``http.server`` wrapper around any local :class:`~repro.engine.cache.
CacheBackend`); this module is the client side, all stdlib ``urllib``:

* :class:`HttpCache` — a :class:`~repro.engine.cache.CacheBackend` over
  a small JSON/HTTP wire protocol, with batched ``get_many`` /
  ``put_many`` round trips to amortize latency and a bulk
  ``get_timings`` probe so LPT cost estimation costs one request, not
  one per key.
* :class:`HttpClaimTable` — the client of the server's shared claim
  table, which is what turns static shards into work stealing: each
  worker claims the next unclaimed grid position instead of owning a
  precomputed slice, so a slow worker's queue drains into fast ones.

Fault model, deliberately asymmetric:

* **cache traffic degrades**: a ``get`` against an unreachable or
  misbehaving server is a *miss* and a ``put`` is dropped — the sweep
  falls back to recomputing, which is always correct (the cache is an
  optimization). A server restart mid-sweep therefore costs time, never
  correctness.
* **claim traffic fails loudly** (:class:`~repro.errors.CacheError`): a
  worker that cannot reach the claim table must stop rather than guess
  at positions — two workers guessing would both compute overlapping
  cells and the merge would reject the result anyway.

The wire format is Python-dialect JSON (``NaN`` literals allowed —
certified ratios of certificate-less algorithms are ``NaN`` by
contract), which round-trips exactly between ``json.dumps`` and
``json.loads`` on both ends.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Iterator, Mapping, Sequence

from ..errors import CacheError, InvalidParameterError

__all__ = ["HttpCache", "HttpClaimTable"]

#: Default number of entries per ``records:batch`` / ``timings``
#: round trip. Large enough to amortize connection setup, small enough
#: to keep a single response bounded (payloads carry full schedules).
DEFAULT_BATCH_SIZE = 64


def _check_url(url: str) -> str:
    """Validate a cache-server base URL up front.

    ``urlopen`` raises a bare ``ValueError`` on a scheme-less URL —
    which is neither a transport fault nor a :class:`ReproError`, so it
    would escape every handler as a raw traceback. Catch it here, once,
    as the input error it is.
    """
    if not isinstance(url, str) or not url.startswith(("http://", "https://")):
        raise InvalidParameterError(
            f"cache server URL must start with http:// or https://, "
            f"got {url!r}"
        )
    return url.rstrip("/")


def _http_json(
    base_url: str,
    method: str,
    path: str,
    body: Any | None = None,
    *,
    timeout: float,
) -> tuple[int, Any | None]:
    """One JSON round trip against the cache server.

    Returns ``(status, parsed_body)`` — ``parsed_body`` is ``None`` for
    an empty or non-JSON response (the caller decides whether that is a
    protocol error or a benign miss). Transport failures (connection
    refused, DNS, timeout) raise :class:`CacheError`; HTTP error
    *statuses* are returned like any other, since 404 is part of the
    protocol.
    """
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        base_url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            status = response.status
            raw = response.read()
    except urllib.error.HTTPError as exc:
        status = exc.code
        raw = exc.read() or b""
    except (
        urllib.error.URLError,
        # Not-HTTP-at-all and truncated responses (BadStatusLine,
        # IncompleteRead) are HTTPException, which is neither URLError
        # nor OSError — without this clause they would escape the
        # lenient get/put paths and abort a sweep mid-run.
        http.client.HTTPException,
        OSError,
        TimeoutError,
    ) as exc:
        raise CacheError(
            f"cache server {base_url} unreachable ({method} {path}): {exc}"
        ) from exc
    if not raw:
        return status, None
    try:
        return status, json.loads(raw)
    except json.JSONDecodeError:
        return status, None


class HttpCache:
    """A :class:`~repro.engine.cache.CacheBackend` over the cache-server
    wire protocol.

    ``get``/``put``/``get_many``/``put_many``/``get_timings`` are
    *lenient*: any transport or protocol problem reads as a miss (or a
    dropped write) and the sweep recomputes — see the module docstring
    for why. Introspection (``keys``, ``len``, ``stats``, ``gc``) is
    *strict* and raises :class:`~repro.errors.CacheError`: those answers
    are the point of the call, and a silently-empty one would lie.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 10.0,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.url = _check_url(url)
        if not isinstance(batch_size, int) or batch_size < 1:
            raise InvalidParameterError(
                f"batch_size must be an int >= 1, got {batch_size!r}"
            )
        self.timeout = float(timeout)
        self.batch_size = batch_size

    # -- wire helpers ---------------------------------------------------
    def _record_path(self, key: str) -> str:
        return f"/records/{urllib.parse.quote(key, safe='')}"

    def _chunks(self, items: Sequence[Any]) -> Iterator[Sequence[Any]]:
        for start in range(0, len(items), self.batch_size):
            yield items[start : start + self.batch_size]

    # -- lenient cache traffic ------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        try:
            status, payload = _http_json(
                self.url, "GET", self._record_path(key), timeout=self.timeout
            )
        except CacheError:
            return None
        if status != 200 or not isinstance(payload, dict):
            return None
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        try:
            _http_json(
                self.url,
                "PUT",
                self._record_path(key),
                payload,
                timeout=self.timeout,
            )
        except CacheError:
            pass  # dropped write: the entry is recomputable by contract

    def get_many(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        """Fetch many entries in ``batch_size``-bounded round trips.

        Missing keys are simply absent from the result; a failed chunk
        contributes nothing (its keys read as misses).
        """
        found: dict[str, dict[str, Any]] = {}
        for chunk in self._chunks(list(keys)):
            try:
                status, reply = _http_json(
                    self.url,
                    "POST",
                    "/records:batch",
                    {"get": list(chunk)},
                    timeout=self.timeout,
                )
            except CacheError:
                continue
            if status != 200 or not isinstance(reply, dict):
                continue
            records = reply.get("records")
            if isinstance(records, dict):
                for key, payload in records.items():
                    if isinstance(payload, dict):
                        found[key] = payload
        return found

    def put_many(self, entries: Mapping[str, dict[str, Any]]) -> None:
        """Store many entries in ``batch_size``-bounded round trips."""
        items = list(entries.items())
        for chunk in self._chunks(items):
            try:
                _http_json(
                    self.url,
                    "POST",
                    "/records:batch",
                    {"put": dict(chunk)},
                    timeout=self.timeout,
                )
            except CacheError:
                pass

    def get_timings(self, keys: Sequence[str]) -> dict[str, float]:
        """Bulk ``wall_time`` lookup — the cost model's one round trip
        (per chunk) instead of one per key."""
        out: dict[str, float] = {}
        for chunk in self._chunks(list(keys)):
            try:
                status, reply = _http_json(
                    self.url,
                    "POST",
                    "/timings",
                    {"keys": list(chunk)},
                    timeout=self.timeout,
                )
            except CacheError:
                continue
            if status != 200 or not isinstance(reply, dict):
                continue
            timings = reply.get("timings")
            if isinstance(timings, dict):
                for key, value in timings.items():
                    if isinstance(value, (int, float)):
                        out[key] = float(value)
        return out

    def get_timing(self, key: str) -> float | None:
        return self.get_timings([key]).get(key)

    # -- strict introspection -------------------------------------------
    def _strict(self, method: str, path: str, body: Any | None = None) -> Any:
        status, reply = _http_json(
            self.url, method, path, body, timeout=self.timeout
        )
        if status != 200 or not isinstance(reply, dict):
            detail = (
                reply.get("error")
                if isinstance(reply, dict)
                else "no usable JSON body"
            )
            raise CacheError(
                f"cache server {self.url} answered {method} {path} with "
                f"status {status}: {detail}"
            )
        return reply

    def keys(self) -> Iterator[str]:
        reply = self._strict("GET", "/keys")
        keys = reply.get("keys")
        if not isinstance(keys, list):
            raise CacheError(
                f"cache server {self.url} GET /keys returned no 'keys' list"
            )
        yield from (str(key) for key in keys)

    def stats(self) -> dict[str, Any]:
        """The server's stats (its backend, entries, bytes, timing
        coverage), stamped with this client's URL."""
        reply = self._strict("GET", "/stats")
        server = reply.get("backend", "?")
        return {
            **reply,
            "backend": f"http({server})",
            "location": self.url,
        }

    def gc(self, older_than: float) -> int:
        reply = self._strict("POST", "/gc", {"older_than": float(older_than)})
        return int(reply.get("removed", 0))

    def close(self) -> None:
        """No-op: every round trip opens and closes its own connection."""

    def __enter__(self) -> "HttpCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        entries = self._strict("GET", "/stats").get("entries")
        if not isinstance(entries, int):
            raise CacheError(
                f"cache server {self.url} GET /stats returned no entry count"
            )
        return entries


class HttpClaimTable:
    """Client of the cache server's shared claim table.

    Joining (the constructor) creates the table idempotently: the first
    worker to arrive creates it, later workers join it, and a worker
    whose ``total`` disagrees is rejected with a
    :class:`~repro.errors.CacheError` — differing totals mean the
    workers compiled different request lists and must not cooperate.

    ``token`` is the server-minted identity of this claim session.
    Every cooperating worker reads back the same token and stamps it
    into its shard file as the assignment fingerprint, which is how
    ``--merge`` recognizes dynamically-claimed shards as one run.

    ``lease_ttl`` (seconds) opts into claim leases: positions this
    worker claims but never reports :meth:`done` within the TTL are
    reissued by the server to other claimers, so a crashed worker's
    cells are recomputed instead of stranded. All cooperating workers
    must pass the same ``lease_ttl`` (the server 409s a mismatch, like
    a total mismatch). Pick a TTL comfortably above the most expensive
    cell — a too-short lease makes healthy-but-slow workers race their
    own reissues.
    """

    def __init__(
        self,
        url: str,
        claim_id: str,
        total: int,
        *,
        lease_ttl: float | None = None,
        timeout: float = 10.0,
    ) -> None:
        from .runner import _check_lease_ttl  # shared claim validation

        if not isinstance(total, int) or total < 0:
            raise InvalidParameterError(
                f"claim-table total must be an int >= 0, got {total!r}"
            )
        self.url = _check_url(url)
        self.claim_id = str(claim_id)
        self.total = total
        self.lease_ttl = _check_lease_ttl(lease_ttl)
        self.timeout = float(timeout)
        self._last_outstanding = 0
        body: dict = {"total": total}
        if self.lease_ttl is not None:
            body["lease"] = self.lease_ttl
        status, reply = _http_json(
            self.url,
            "POST",
            self._path(""),
            body,
            timeout=self.timeout,
        )
        if status == 409:
            detail = (reply or {}).get("error", "total mismatch")
            raise CacheError(
                f"claim table {self.claim_id} on {self.url} rejected this "
                f"worker: {detail} — the workers compiled different "
                "request lists and cannot cooperate on one sweep"
            )
        if status != 200 or not isinstance(reply, dict) or "token" not in reply:
            raise CacheError(
                f"cache server {self.url} could not create claim table "
                f"{self.claim_id} (status {status}): {reply!r}"
            )
        self.token = str(reply["token"])

    def _path(self, suffix: str) -> str:
        return f"/claims/{urllib.parse.quote(self.claim_id, safe='')}{suffix}"

    def claim(self, count: int = 1) -> list[int]:
        """Atomically claim up to ``count`` unclaimed positions.

        An empty list means the table is drained — this worker is done.
        Strict by design: a transport failure raises rather than letting
        the worker invent positions.
        """
        if not isinstance(count, int) or count < 1:
            raise InvalidParameterError(
                f"claim count must be an int >= 1, got {count!r}"
            )
        status, reply = _http_json(
            self.url,
            "POST",
            self._path("/next"),
            {"count": count},
            timeout=self.timeout,
        )
        positions = (
            reply.get("positions") if isinstance(reply, dict) else None
        )
        # Element-wise validation, not int() coercion: a version-skewed
        # server replying ["abc"] must fail as the claim fault it is
        # (not a raw ValueError), and [1.5] must not silently truncate
        # onto a position another worker legitimately claimed.
        if (
            status != 200
            or not isinstance(positions, list)
            or any(
                not isinstance(position, int) or isinstance(position, bool)
                for position in positions
            )
        ):
            raise CacheError(
                f"claim table {self.claim_id} on {self.url} failed to hand "
                f"out positions (status {status}): {reply!r}"
            )
        outstanding = reply.get("outstanding")
        self._last_outstanding = (
            outstanding
            if isinstance(outstanding, int) and not isinstance(outstanding, bool)
            else 0
        )
        return list(positions)

    def pending(self) -> int:
        """Live leases table-wide, as of the most recent :meth:`claim`.

        Consulted by lease-aware workers right after an empty claim —
        the reply that returned no positions carries the current
        outstanding count, so no extra round trip is needed.
        """
        return self._last_outstanding

    def done(self, positions: Sequence[int]) -> None:
        """Report computed positions so their leases are never reissued.

        Strict like all claim traffic: a worker that cannot reach the
        table must stop rather than let its leases silently expire into
        recomputation while it keeps going.
        """
        from .runner import _check_done_positions  # shared claim validation

        checked = _check_done_positions(positions, self.total)
        status, reply = _http_json(
            self.url,
            "POST",
            self._path("/done"),
            {"positions": checked},
            timeout=self.timeout,
        )
        if status != 200:
            raise CacheError(
                f"claim table {self.claim_id} on {self.url} rejected a done "
                f"report (status {status}): {reply!r}"
            )
