"""Network cache fabric clients: HTTP cache backend and claim table.

The server side lives in :mod:`repro.io.server` (a thin
``http.server`` wrapper around any local :class:`~repro.engine.cache.
CacheBackend`); this module is the client side, all stdlib
``http.client``:

* :class:`HttpConnectionPool` — a thread-safe pool of persistent
  keep-alive connections to one server. Every round trip checks a
  connection out, reuses the warm socket, and checks it back in; a
  stale pooled socket (server restarted, idle timeout closed it) gets
  exactly one transparent reconnect on a fresh connection before the
  fault surfaces.
* :class:`HttpCache` — a :class:`~repro.engine.cache.CacheBackend` over
  a small JSON/HTTP wire protocol, with batched ``get_many`` /
  ``put_many`` round trips to amortize latency, a bulk ``get_timings``
  probe so LPT cost estimation costs one request per chunk, and
  negotiated zlib compression of large batch bodies.
* :class:`HttpClaimTable` — the client of the server's shared claim
  table, which is what turns static shards into work stealing: each
  worker claims the next unclaimed grid positions (batched — ``k`` per
  round trip) instead of owning a precomputed slice, so a slow
  worker's queue drains into fast ones.

Compression is negotiated RFC-7694 style so either end may be old:
every request advertises ``Accept-Encoding: deflate``; a new server
echoes the same header on its responses (meaning "you may deflate
*request* bodies at me") and deflates large response bodies for
clients that advertised. The client compresses request bodies only
after it has seen that server marker — the very first request on a
fresh pool is always identity-encoded, so an old server never receives
bytes it cannot parse.

Fault model, deliberately asymmetric:

* **cache traffic degrades**: a ``get`` against an unreachable or
  misbehaving server is a *miss* and a ``put`` is dropped — the sweep
  falls back to recomputing, which is always correct (the cache is an
  optimization). Transient faults are retried under bounded
  exponential backoff with *seeded* jitter (:class:`RetryPolicy`), so
  a server restart mid-sweep costs time, never correctness — and never
  determinism.
* **claim traffic fails loudly** (:class:`~repro.errors.CacheError`),
  after the pool's single stale-socket reconnect but with no backoff
  loop: a worker that cannot reach the claim table must stop rather
  than guess at positions — two workers guessing would both compute
  overlapping cells and the merge would reject the result anyway.

The wire format is Python-dialect JSON (``NaN`` literals allowed —
certified ratios of certificate-less algorithms are ``NaN`` by
contract), which round-trips exactly between ``json.dumps`` and
``json.loads`` on both ends.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import random
import socket
import threading
import time
import urllib.parse
import zlib
from email.message import Message
from typing import Any, Iterator, Mapping, Sequence

from ..errors import CacheError, InvalidParameterError

__all__ = [
    "HttpCache",
    "HttpClaimTable",
    "HttpConnectionPool",
    "RetryPolicy",
]

#: Default number of entries per ``records:batch`` / ``timings``
#: round trip. Large enough to amortize a round trip, small enough
#: to keep a single response bounded (payloads carry full schedules).
DEFAULT_BATCH_SIZE = 64

#: Default cap on idle keep-alive connections parked per pool. A sweep
#: worker talks to one server from a handful of threads at most; excess
#: sockets beyond the cap are closed on check-in rather than hoarded.
DEFAULT_POOL_SIZE = 4

#: Bodies below this many serialized bytes are never compressed — the
#: zlib header plus CPU time costs more than the bytes saved, and small
#: bodies (single records, claim requests) dominate request counts.
COMPRESS_MIN_BYTES = 1024

_DEFLATE = "deflate"


def _check_url(url: str) -> str:
    """Validate a cache-server base URL up front.

    A scheme-less URL would otherwise surface as a bare ``ValueError``
    deep inside the transport — which is neither a transport fault nor
    a :class:`ReproError`, so it would escape every handler as a raw
    traceback. Catch it here, once, as the input error it is.
    """
    if not isinstance(url, str) or not url.startswith(("http://", "https://")):
        raise InvalidParameterError(
            f"cache server URL must start with http:// or https://, "
            f"got {url!r}"
        )
    return url.rstrip("/")


class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Shared by every *lenient* route (records and timings): attempt,
    then on transport fault sleep ``base_delay * 2**attempt`` capped at
    ``max_delay``, scaled by a jitter factor drawn from a **seeded**
    ``random.Random`` — reproducible under ``repro lint``'s
    determinism contract (RPR1xx: no unseeded entropy), yet still
    de-synchronized across workers when each passes its shard index as
    the seed. ``retries=0`` restores single-shot behavior.
    """

    def __init__(
        self,
        retries: int = 2,
        *,
        base_delay: float = 0.05,
        max_delay: float = 1.0,
        jitter: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not isinstance(retries, int) or isinstance(retries, bool) or retries < 0:
            raise InvalidParameterError(
                f"retries must be an int >= 0, got {retries!r}"
            )
        if base_delay < 0 or max_delay < 0:
            raise InvalidParameterError(
                f"backoff delays must be >= 0, got base_delay={base_delay!r} "
                f"max_delay={max_delay!r}"
            )
        if not 0 <= jitter <= 1:
            raise InvalidParameterError(
                f"jitter must be within [0, 1], got {jitter!r}"
            )
        self.retries = retries
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = seed
        self._rng = random.Random(seed)

    def delays(self) -> Iterator[float]:
        """One bounded, jittered delay per permitted retry."""
        for attempt in range(self.retries):
            delay = min(self.base_delay * (2.0**attempt), self.max_delay)
            if self.jitter:
                delay *= 1.0 + self.jitter * self._rng.uniform(-1.0, 1.0)
            yield delay


class HttpConnectionPool:
    """Thread-safe pool of persistent keep-alive connections to one
    cache server.

    ``request`` checks a warm connection out (or dials a fresh one),
    runs one HTTP round trip, and parks the connection for reuse. The
    server speaks HTTP/1.1 with ``Content-Length`` on every reply, so
    sockets stay open across requests — the pool turns the old
    connection-per-request client into amortized-zero connection setup.

    Staleness: a *reused* socket can die at any time (server restart,
    idle timeout, mid-sweep network blip). A transport fault on a
    pooled connection therefore gets exactly one transparent retry on
    a freshly dialed connection; a fault on a fresh connection is real
    and raises :class:`~repro.errors.CacheError`. HTTP error *statuses*
    are returned like any other response — 404 is part of the protocol.

    The pool also carries the compression negotiation state: once any
    response advertises ``Accept-Encoding: deflate``, the pool marks
    the peer deflate-capable and callers may start compressing request
    bodies (see the module docstring).
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 10.0,
        max_idle: int = DEFAULT_POOL_SIZE,
        keep_alive: bool = True,
    ) -> None:
        self.url = _check_url(url)
        if not isinstance(max_idle, int) or isinstance(max_idle, bool) or max_idle < 1:
            raise InvalidParameterError(
                f"max_idle must be an int >= 1, got {max_idle!r}"
            )
        parts = urllib.parse.urlsplit(self.url)
        self._factory = (
            http.client.HTTPSConnection
            if parts.scheme == "https"
            else http.client.HTTPConnection
        )
        self._host = parts.hostname or ""
        self._port = parts.port
        self._prefix = parts.path
        self.timeout = float(timeout)
        self.keep_alive = bool(keep_alive)
        self.max_idle = max_idle
        self._lock = threading.Lock()
        self._idle: list[http.client.HTTPConnection] = []
        self._peer_accepts_deflate = False

    # -- connection lifecycle -------------------------------------------
    @property
    def peer_accepts_deflate(self) -> bool:
        """Whether any response so far advertised deflate support."""
        with self._lock:
            return self._peer_accepts_deflate

    def _checkout(self) -> http.client.HTTPConnection | None:
        with self._lock:
            return self._idle.pop() if self._idle else None

    def _checkin(self, conn: http.client.HTTPConnection) -> None:
        if self.keep_alive:
            with self._lock:
                if len(self._idle) < self.max_idle:
                    self._idle.append(conn)
                    return
        conn.close()

    def _note_peer(self, headers: Message) -> None:
        accepted = headers.get("Accept-Encoding", "")
        if _DEFLATE in accepted.lower():
            with self._lock:
                self._peer_accepts_deflate = True

    def idle_count(self) -> int:
        """Parked keep-alive connections right now (introspection)."""
        with self._lock:
            return len(self._idle)

    def close(self) -> None:
        """Close every parked connection. Safe to call repeatedly; the
        pool keeps working afterwards (it just dials fresh sockets)."""
        with self._lock:
            drained, self._idle = self._idle, []
        for conn in drained:
            conn.close()

    def __enter__(self) -> "HttpConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- one round trip -------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        data: bytes | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, Message, bytes]:
        """One HTTP round trip; returns ``(status, headers, body)``.

        Transport faults raise :class:`CacheError` — after one
        transparent reconnect if the failing connection was a reused
        pooled one (stale keep-alive sockets are an expected hazard,
        not a server fault).
        """
        conn = self._checkout()
        reused = conn is not None
        while True:
            fresh = conn is None
            if fresh:
                conn = self._factory(
                    self._host, self._port, timeout=self.timeout
                )
            try:
                if fresh:
                    conn.connect()
                    # Nagle + delayed ACK stalls every request on a
                    # reused keep-alive socket by ~40ms; the pool exists
                    # to make round trips cheap, so small segments must
                    # go out immediately.
                    with contextlib.suppress(OSError, AttributeError):
                        conn.sock.setsockopt(
                            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                        )
                conn.request(
                    method, self._prefix + path, body=data, headers=dict(headers or {})
                )
                response = conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, OSError, TimeoutError) as exc:
                conn.close()
                if reused:
                    # The parked socket went stale between requests —
                    # redial once; only a fresh-socket fault is real.
                    reused = False
                    conn = None
                    continue
                raise CacheError(
                    f"cache server {self.url} unreachable "
                    f"({method} {path}): {exc}"
                ) from exc
            self._note_peer(response.headers)
            if response.will_close:
                conn.close()
            else:
                self._checkin(conn)
            return response.status, response.headers, raw


def _encode_body(
    body: Any | None, *, compress: bool
) -> tuple[bytes | None, dict[str, str]]:
    """Serialize a JSON body, deflating it when negotiated and large.

    Every request advertises ``Accept-Encoding: deflate`` — that is
    the client's half of the negotiation, and it also asks the server
    to deflate large *response* bodies.
    """
    headers = {
        "Content-Type": "application/json",
        "Accept-Encoding": _DEFLATE,
    }
    if body is None:
        return None, headers
    data = json.dumps(body).encode("utf-8")
    if compress and len(data) >= COMPRESS_MIN_BYTES:
        data = zlib.compress(data)
        headers["Content-Encoding"] = _DEFLATE
    return data, headers


def _decode_body(headers: Message, raw: bytes) -> Any | None:
    """Parse a (possibly deflated) JSON response body; ``None`` if the
    body is empty or unusable — the caller decides whether that is a
    protocol error or a benign miss."""
    if not raw:
        return None
    if headers.get("Content-Encoding", "").strip().lower() == _DEFLATE:
        try:
            raw = zlib.decompress(raw)
        except zlib.error:
            return None
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return None


def _pool_json(
    pool: HttpConnectionPool,
    method: str,
    path: str,
    body: Any | None = None,
    *,
    compress: bool = False,
) -> tuple[int, Any | None]:
    """One JSON round trip over the pool.

    Returns ``(status, parsed_body)``; transport failures raise
    :class:`CacheError` (via the pool). Request bodies are deflated
    only when the caller opted in *and* the peer already advertised
    support — never on the first exchange of a fresh pool.
    """
    data, headers = _encode_body(
        body, compress=compress and pool.peer_accepts_deflate
    )
    status, reply_headers, raw = pool.request(method, path, data, headers)
    return status, _decode_body(reply_headers, raw)


class HttpCache:
    """A :class:`~repro.engine.cache.CacheBackend` over the cache-server
    wire protocol, on a persistent connection pool.

    ``get``/``put``/``get_many``/``put_many``/``get_timings`` are
    *lenient*: any transport or protocol problem reads as a miss (or a
    dropped write) after the retry budget — see the module docstring
    for why. Introspection (``keys``, ``len``, ``stats``, ``gc``) is
    *strict* and raises :class:`~repro.errors.CacheError`: those answers
    are the point of the call, and a silently-empty one would lie.

    ``keep_alive=False`` restores one-connection-per-request transport
    (the pre-pool behavior — kept as the benchmarking baseline and as
    an escape hatch for proxies that mishandle keep-alive).
    ``compress=False`` disables request-body deflate; response-side
    negotiation is harmless either way. ``close()`` now actually
    releases the parked sockets — sweeps and the CLI route through it.
    """

    #: Safe to share across threads: the pool hands each round trip its
    #: own connection, and the server's striped locks do the rest.
    thread_safe = True

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 10.0,
        batch_size: int = DEFAULT_BATCH_SIZE,
        keep_alive: bool = True,
        compress: bool = True,
        pool_size: int = DEFAULT_POOL_SIZE,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.url = _check_url(url)
        if not isinstance(batch_size, int) or batch_size < 1:
            raise InvalidParameterError(
                f"batch_size must be an int >= 1, got {batch_size!r}"
            )
        self.timeout = float(timeout)
        self.batch_size = batch_size
        self.compress = bool(compress)
        self.retry = RetryPolicy() if retry is None else retry
        self._pool = HttpConnectionPool(
            self.url,
            timeout=self.timeout,
            max_idle=pool_size,
            keep_alive=keep_alive,
        )

    # -- wire helpers ---------------------------------------------------
    @property
    def pool(self) -> HttpConnectionPool:
        """The underlying connection pool (introspection / tests)."""
        return self._pool

    def _record_path(self, key: str) -> str:
        return f"/records/{urllib.parse.quote(key, safe='')}"

    def _chunks(self, items: Sequence[Any]) -> Iterator[Sequence[Any]]:
        for start in range(0, len(items), self.batch_size):
            yield items[start : start + self.batch_size]

    def _lenient_json(
        self, method: str, path: str, body: Any | None = None
    ) -> tuple[int, Any | None] | None:
        """A round trip under the retry policy; ``None`` once the
        budget is spent (the caller reads that as a miss / dropped
        write). Every record and timing route funnels through here, so
        backoff behavior is uniform across the lenient surface."""
        delays = self.retry.delays()
        while True:
            try:
                return _pool_json(
                    self._pool, method, path, body, compress=self.compress
                )
            except CacheError:
                delay = next(delays, None)
                if delay is None:
                    return None
                time.sleep(delay)

    # -- lenient cache traffic ------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        reply = self._lenient_json("GET", self._record_path(key))
        if reply is None:
            return None
        status, payload = reply
        if status != 200 or not isinstance(payload, dict):
            return None
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        # A reply of None is a dropped write: recomputable by contract.
        self._lenient_json("PUT", self._record_path(key), payload)

    def get_many(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        """Fetch many entries in ``batch_size``-bounded round trips.

        Missing keys are simply absent from the result; a failed chunk
        contributes nothing (its keys read as misses).
        """
        found: dict[str, dict[str, Any]] = {}
        for chunk in self._chunks(list(keys)):
            result = self._lenient_json(
                "POST", "/records:batch", {"get": list(chunk)}
            )
            if result is None:
                continue
            status, reply = result
            if status != 200 or not isinstance(reply, dict):
                continue
            records = reply.get("records")
            if isinstance(records, dict):
                for key, payload in records.items():
                    if isinstance(payload, dict):
                        found[key] = payload
        return found

    def put_many(self, entries: Mapping[str, dict[str, Any]]) -> None:
        """Store many entries in ``batch_size``-bounded round trips."""
        items = list(entries.items())
        for chunk in self._chunks(items):
            self._lenient_json("POST", "/records:batch", {"put": dict(chunk)})

    def get_timings(self, keys: Sequence[str]) -> dict[str, float]:
        """Bulk ``wall_time`` lookup — the cost model's one round trip
        (per chunk) instead of one per key."""
        out: dict[str, float] = {}
        for chunk in self._chunks(list(keys)):
            result = self._lenient_json(
                "POST", "/timings", {"keys": list(chunk)}
            )
            if result is None:
                continue
            status, reply = result
            if status != 200 or not isinstance(reply, dict):
                continue
            timings = reply.get("timings")
            if isinstance(timings, dict):
                for key, value in timings.items():
                    if isinstance(value, (int, float)):
                        out[key] = float(value)
        return out

    def get_timing(self, key: str) -> float | None:
        return self.get_timings([key]).get(key)

    # -- strict introspection -------------------------------------------
    def _strict(self, method: str, path: str, body: Any | None = None) -> Any:
        status, reply = _pool_json(
            self._pool, method, path, body, compress=self.compress
        )
        if status != 200 or not isinstance(reply, dict):
            detail = (
                reply.get("error")
                if isinstance(reply, dict)
                else "no usable JSON body"
            )
            raise CacheError(
                f"cache server {self.url} answered {method} {path} with "
                f"status {status}: {detail}"
            )
        return reply

    def keys(self) -> Iterator[str]:
        reply = self._strict("GET", "/keys")
        keys = reply.get("keys")
        if not isinstance(keys, list):
            raise CacheError(
                f"cache server {self.url} GET /keys returned no 'keys' list"
            )
        yield from (str(key) for key in keys)

    def stats(self, *, deep: bool = True) -> dict[str, Any]:
        """The server's stats, stamped with this client's URL.

        ``deep=True`` (the default) asks the server for the full
        backend walk — entries, bytes, timing coverage — which is the
        authoritative answer introspection wants. ``deep=False`` hits
        the lock-free monitoring snapshot instead: live fabric
        counters, never touching the backend, safe to poll against a
        busy server.
        """
        reply = self._strict("GET", "/stats?deep=1" if deep else "/stats")
        server = reply.get("backend", "?")
        return {
            **reply,
            "backend": f"http({server})",
            "location": self.url,
        }

    def gc(self, older_than: float) -> int:
        reply = self._strict("POST", "/gc", {"older_than": float(older_than)})
        return int(reply.get("removed", 0))

    def close(self) -> None:
        """Release the pool's parked keep-alive connections."""
        self._pool.close()

    def __enter__(self) -> "HttpCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        entries = self._strict("GET", "/stats?deep=1").get("entries")
        if not isinstance(entries, int):
            raise CacheError(
                f"cache server {self.url} GET /stats returned no entry count"
            )
        return entries


class HttpClaimTable:
    """Client of the cache server's shared claim table.

    Joining (the constructor) creates the table idempotently: the first
    worker to arrive creates it, later workers join it, and a worker
    whose ``total`` disagrees is rejected with a
    :class:`~repro.errors.CacheError` — differing totals mean the
    workers compiled different request lists and must not cooperate.

    ``token`` is the server-minted identity of this claim session.
    Every cooperating worker reads back the same token and stamps it
    into its shard file as the assignment fingerprint, which is how
    ``--merge`` recognizes dynamically-claimed shards as one run.

    ``lease_ttl`` (seconds) opts into claim leases: positions this
    worker claims but never reports :meth:`done` within the TTL are
    reissued by the server to other claimers, so a crashed worker's
    cells are recomputed instead of stranded. All cooperating workers
    must pass the same ``lease_ttl`` (the server 409s a mismatch, like
    a total mismatch). Pick a TTL comfortably above the most expensive
    cell — a too-short lease makes healthy-but-slow workers race their
    own reissues.

    Claim traffic rides its own small keep-alive pool. Batched
    handouts go over the wire as ``POST /claims/<id>/next?k=N`` *and*
    carry ``{"count": N}`` in the body — an old server ignores the
    query and honors the body, so mixed-version fleets keep working.
    """

    def __init__(
        self,
        url: str,
        claim_id: str,
        total: int,
        *,
        lease_ttl: float | None = None,
        timeout: float = 10.0,
        keep_alive: bool = True,
    ) -> None:
        from .runner import _check_lease_ttl  # shared claim validation

        if not isinstance(total, int) or total < 0:
            raise InvalidParameterError(
                f"claim-table total must be an int >= 0, got {total!r}"
            )
        self.url = _check_url(url)
        self.claim_id = str(claim_id)
        self.total = total
        self.lease_ttl = _check_lease_ttl(lease_ttl)
        self.timeout = float(timeout)
        self._last_outstanding = 0
        self._pool = HttpConnectionPool(
            self.url,
            timeout=self.timeout,
            max_idle=2,
            keep_alive=keep_alive,
        )
        body: dict = {"total": total}
        if self.lease_ttl is not None:
            body["lease"] = self.lease_ttl
        status, reply = _pool_json(self._pool, "POST", self._path(""), body)
        if status == 409:
            detail = (reply or {}).get("error", "total mismatch")
            raise CacheError(
                f"claim table {self.claim_id} on {self.url} rejected this "
                f"worker: {detail} — the workers compiled different "
                "request lists and cannot cooperate on one sweep"
            )
        if status != 200 or not isinstance(reply, dict) or "token" not in reply:
            raise CacheError(
                f"cache server {self.url} could not create claim table "
                f"{self.claim_id} (status {status}): {reply!r}"
            )
        self.token = str(reply["token"])

    def _path(self, suffix: str) -> str:
        return f"/claims/{urllib.parse.quote(self.claim_id, safe='')}{suffix}"

    def claim(self, count: int = 1) -> list[int]:
        """Atomically claim up to ``count`` unclaimed positions in one
        round trip.

        An empty list means the table is drained — this worker is done.
        Strict by design: a transport failure raises rather than letting
        the worker invent positions.
        """
        if not isinstance(count, int) or count < 1:
            raise InvalidParameterError(
                f"claim count must be an int >= 1, got {count!r}"
            )
        status, reply = _pool_json(
            self._pool,
            "POST",
            self._path(f"/next?k={count}"),
            {"count": count},
        )
        positions = (
            reply.get("positions") if isinstance(reply, dict) else None
        )
        # Element-wise validation, not int() coercion: a version-skewed
        # server replying ["abc"] must fail as the claim fault it is
        # (not a raw ValueError), and [1.5] must not silently truncate
        # onto a position another worker legitimately claimed.
        if (
            status != 200
            or not isinstance(positions, list)
            or any(
                not isinstance(position, int) or isinstance(position, bool)
                for position in positions
            )
        ):
            raise CacheError(
                f"claim table {self.claim_id} on {self.url} failed to hand "
                f"out positions (status {status}): {reply!r}"
            )
        outstanding = reply.get("outstanding")
        self._last_outstanding = (
            outstanding
            if isinstance(outstanding, int) and not isinstance(outstanding, bool)
            else 0
        )
        return list(positions)

    def pending(self) -> int:
        """Live leases table-wide, as of the most recent :meth:`claim`.

        Consulted by lease-aware workers right after an empty claim —
        the reply that returned no positions carries the current
        outstanding count, so no extra round trip is needed.
        """
        return self._last_outstanding

    def done(self, positions: Sequence[int]) -> None:
        """Report computed positions so their leases are never reissued.

        Strict like all claim traffic: a worker that cannot reach the
        table must stop rather than let its leases silently expire into
        recomputation while it keeps going.
        """
        from .runner import _check_done_positions  # shared claim validation

        checked = _check_done_positions(positions, self.total)
        status, reply = _pool_json(
            self._pool, "POST", self._path("/done"), {"positions": checked}
        )
        if status != 200:
            raise CacheError(
                f"claim table {self.claim_id} on {self.url} rejected a done "
                f"report (status {status}): {reply!r}"
            )

    def close(self) -> None:
        """Release the claim pool's parked connections."""
        self._pool.close()

    def __enter__(self) -> "HttpClaimTable":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
