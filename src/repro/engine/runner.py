"""Parallel batch execution of (algorithm × instance) grids.

The shape every experiment in this library shares — "run these
algorithms on these instances and collect per-cell summaries" — lives
here, once. A :class:`BatchRunner` takes a list of :class:`RunRequest`
cells and returns one :class:`RunRecord` per cell, **in request order**
regardless of completion order, evaluated either serially
(``workers=1``) or on a ``ProcessPoolExecutor``.

Records are plain JSON-able measurements (cost, energy, acceptance,
certified ratio, the full serialized schedule), which buys two
properties at once:

* **parallel == serial**: worker processes ship back the exact payload a
  serial run would produce, so results are bit-identical whatever the
  worker count;
* **cacheable**: the same payload is what the content-addressed
  :class:`~repro.engine.cache.ResultCache` stores, so a cache hit is
  indistinguishable from a fresh run (and a warm sweep recomputes
  nothing — only changed cells miss).

The certified ratio is filled for exactly the algorithms whose registry
entry declares the ``certificate-producing`` capability; other cells
carry ``NaN`` there, never a fake number.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..errors import InvalidParameterError
from ..io.serialize import (
    SCHEMA_VERSION,
    instance_to_dict,
    schedule_to_dict,
    stable_hash,
)
from ..model.job import Instance
from .cache import ResultCache
from .registry import REGISTRY

__all__ = [
    "RunRequest",
    "RunRecord",
    "RunnerStats",
    "BatchRunner",
    "request_key",
    "evaluate_request",
]

#: Bumped whenever the record payload changes shape, so stale cache
#: entries from an older build miss instead of deserializing wrongly.
RECORD_VERSION = 1


@dataclass(frozen=True)
class RunRequest:
    """One grid cell: an algorithm name, an instance, and caller context.

    ``tag`` is an arbitrary JSON-able mapping the caller threads through
    to the record (sweep parameters, seed, ...); it does not participate
    in the cache key — only the algorithm and the instance content do.
    """

    algorithm: str
    instance: Instance
    tag: Mapping[str, Any] | None = None


@dataclass(frozen=True)
class RunRecord:
    """The measurements of one evaluated cell.

    ``schedule`` is the full :func:`~repro.io.serialize.schedule_to_dict`
    form — everything needed to audit or replay the cell offline.
    ``certified_ratio`` / ``dual_g`` are ``NaN`` unless the algorithm's
    registry entry produces certificates. ``cached`` tells whether this
    record was served without a fresh evaluation for this request —
    from the on-disk result cache, or from an identical cell earlier in
    the same batch.
    """

    algorithm: str
    cost: float
    energy: float
    lost_value: float
    acceptance: float
    certified_ratio: float
    dual_g: float
    schedule: dict[str, Any] = field(repr=False)
    key: str = ""
    cached: bool = False
    tag: Mapping[str, Any] | None = None

    @property
    def finished(self) -> tuple[bool, ...]:
        """Per-job finished flags, in the schedule's job order."""
        return tuple(bool(f) for f in self.schedule["finished"])


def request_key(algorithm: str, instance: Instance) -> str:
    """Content address of a cell: algorithm + full instance content."""
    return stable_hash(
        {
            "kind": "run-request",
            "schema": SCHEMA_VERSION,
            "record": RECORD_VERSION,
            "algorithm": algorithm,
            "instance": instance_to_dict(instance),
        }
    )


def evaluate_request(request: RunRequest) -> dict[str, Any]:
    """Evaluate one cell and return its JSON-able payload.

    Module-level (not a method) so worker processes can unpickle it by
    name; called identically by the serial path, which is what makes
    ``workers=1`` and ``workers=N`` byte-for-byte interchangeable.
    """
    info = REGISTRY.info(request.algorithm)
    outcome = REGISTRY.run(request.algorithm, request.instance)
    ratio = g = math.nan
    if info.certificate is not None:
        cert = info.certificate(outcome.raw)
        ratio = float(cert.ratio)
        g = float(cert.g)
    schedule = outcome.schedule
    return {
        "kind": "run-record",
        "schema": SCHEMA_VERSION,
        "record": RECORD_VERSION,
        "algorithm": request.algorithm,
        "cost": float(schedule.cost),
        "energy": float(schedule.energy),
        "lost_value": float(schedule.lost_value),
        "acceptance": float(schedule.finished.mean()) if len(schedule.finished) else 1.0,
        "certified_ratio": ratio,
        "dual_g": g,
        "schedule": schedule_to_dict(schedule),
    }


def _record_from_payload(
    payload: dict[str, Any], *, key: str, cached: bool, tag: Mapping[str, Any] | None
) -> RunRecord:
    return RunRecord(
        algorithm=payload["algorithm"],
        cost=float(payload["cost"]),
        energy=float(payload["energy"]),
        lost_value=float(payload["lost_value"]),
        acceptance=float(payload["acceptance"]),
        certified_ratio=float(payload["certified_ratio"]),
        dual_g=float(payload["dual_g"]),
        schedule=payload["schedule"],
        key=key,
        cached=cached,
        tag=tag,
    )


@dataclass
class RunnerStats:
    """Cumulative work accounting of a :class:`BatchRunner`.

    ``computed`` counts algorithm evaluations; ``cache_hits`` requests
    served from the on-disk cache; ``deduplicated`` requests that
    repeated another cell of the same batch and reused its result
    (possible with or without a cache).
    """

    computed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0

    @property
    def total(self) -> int:
        return self.computed + self.cache_hits + self.deduplicated


class BatchRunner:
    """Evaluates request grids, optionally in parallel and/or cached.

    Parameters
    ----------
    workers:
        ``1`` runs cells serially in-process (no pool, no pickling —
        also the mode where monkeypatching registry runners works, which
        tests rely on). ``> 1`` fans uncached cells out to that many
        worker processes.
    cache:
        ``None`` (no caching), a directory path, or a ready
        :class:`ResultCache`. Hits skip evaluation entirely.
    """

    def __init__(
        self, *, workers: int = 1, cache: ResultCache | str | Path | None = None
    ) -> None:
        if not isinstance(workers, int) or workers < 1:
            raise InvalidParameterError(
                f"workers must be an int >= 1, got {workers!r}"
            )
        self.workers = workers
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.stats = RunnerStats()

    def reset_stats(self) -> None:
        self.stats = RunnerStats()

    # ------------------------------------------------------------------
    def run_one(self, algorithm: str, instance: Instance) -> RunRecord:
        """Convenience wrapper: evaluate a single cell."""
        return self.run([RunRequest(algorithm, instance)])[0]

    def run(self, requests: Sequence[RunRequest]) -> list[RunRecord]:
        """Evaluate all cells; results are in request order.

        Duplicate cells (same algorithm + instance content) are computed
        once and fanned back out to every requesting position.
        """
        requests = list(requests)
        keys = [request_key(r.algorithm, r.instance) for r in requests]

        payloads: dict[str, dict[str, Any]] = {}
        fresh: set[str] = set()
        if self.cache is not None:
            for key in keys:
                if key not in payloads:
                    hit = self.cache.get(key)
                    if hit is not None:
                        payloads[key] = hit

        # Unique cells still to compute, in first-appearance order.
        pending: list[tuple[str, RunRequest]] = []
        seen: set[str] = set(payloads)
        for key, request in zip(keys, requests):
            if key not in seen:
                seen.add(key)
                pending.append((key, request))

        if pending:
            if self.workers == 1 or len(pending) == 1:
                computed = [evaluate_request(r) for _, r in pending]
            else:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    computed = list(
                        pool.map(evaluate_request, [r for _, r in pending])
                    )
            for (key, _), payload in zip(pending, computed):
                payloads[key] = payload
                fresh.add(key)
                if self.cache is not None:
                    self.cache.put(key, payload)

        # Work accounting: one computation per distinct evaluated cell;
        # every other request was served either from the on-disk cache
        # or by repeating an in-batch duplicate.
        self.stats.computed += len(pending)

        records = []
        delivered_fresh: set[str] = set()
        for key, request in zip(keys, requests):
            if key in fresh:
                # Freshly evaluated this batch: the first occurrence is
                # the computation, later ones are in-batch duplicates.
                cached = key in delivered_fresh
                if cached:
                    self.stats.deduplicated += 1
                delivered_fresh.add(key)
            else:
                cached = True
                self.stats.cache_hits += 1
            records.append(
                _record_from_payload(
                    payloads[key], key=key, cached=cached, tag=request.tag
                )
            )
        return records
