"""Parallel batch execution of (algorithm × instance) grids.

The shape every experiment in this library shares — "run these
algorithms on these instances and collect per-cell summaries" — lives
here, once. A :class:`BatchRunner` takes a list of :class:`RunRequest`
cells and returns one :class:`RunRecord` per cell, **in request order**
regardless of completion order, evaluated either serially
(``workers=1``) or on a ``ProcessPoolExecutor``.

Records are plain JSON-able measurements (cost, energy, acceptance,
certified ratio, the full serialized schedule), which buys two
properties at once:

* **parallel == serial**: worker processes ship back the exact payload a
  serial run would produce, so results are bit-identical whatever the
  worker count;
* **cacheable**: the same payload is what the content-addressed
  :class:`~repro.engine.cache.ResultCache` stores, so a cache hit is
  indistinguishable from a fresh run (and a warm sweep recomputes
  nothing — only changed cells miss).

The certified ratio is filled for exactly the algorithms whose registry
entry declares the ``certificate-producing`` capability; other cells
carry ``NaN`` there, never a fake number.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..errors import InvalidParameterError
from ..io.serialize import (
    SCHEMA_VERSION,
    instance_to_dict,
    schedule_to_dict,
    stable_hash,
)
from ..model.job import Instance
from .cache import CacheBackend, DirectoryCache
from .registry import REGISTRY

__all__ = [
    "RunRequest",
    "RunRecord",
    "RunnerStats",
    "BatchRunner",
    "request_key",
    "evaluate_request",
    "merge_shards",
    "shard_requests",
    "record_to_payload",
    "record_from_payload",
]

#: Bumped whenever the record payload changes shape, so stale cache
#: entries from an older build miss instead of deserializing wrongly.
RECORD_VERSION = 1


@dataclass(frozen=True)
class RunRequest:
    """One grid cell: an algorithm name, an instance, and caller context.

    ``tag`` is an arbitrary JSON-able mapping the caller threads through
    to the record (sweep parameters, seed, ...); it does not participate
    in the cache key — only the algorithm and the instance content do.
    """

    algorithm: str
    instance: Instance
    tag: Mapping[str, Any] | None = None


@dataclass(frozen=True)
class RunRecord:
    """The measurements of one evaluated cell.

    ``schedule`` is the full :func:`~repro.io.serialize.schedule_to_dict`
    form — everything needed to audit or replay the cell offline.
    ``certified_ratio`` / ``dual_g`` are ``NaN`` unless the algorithm's
    registry entry produces certificates. ``cached`` tells whether this
    record was served without a fresh evaluation for this request —
    from the on-disk result cache, or from an identical cell earlier in
    the same batch.
    """

    algorithm: str
    cost: float
    energy: float
    lost_value: float
    acceptance: float
    certified_ratio: float
    dual_g: float
    schedule: dict[str, Any] = field(repr=False)
    key: str = ""
    cached: bool = False
    tag: Mapping[str, Any] | None = None

    @property
    def finished(self) -> tuple[bool, ...]:
        """Per-job finished flags, in the schedule's job order."""
        return tuple(bool(f) for f in self.schedule["finished"])


def request_key(algorithm: str, instance: Instance) -> str:
    """Content address of a cell: algorithm (+ parsed variant
    parameters) + full instance content.

    Variant specs are resolved through the registry first, so every
    spelling of the same variant (``pd?delta=0.05`` / ``pd?delta=5e-2``)
    keys identically, and a parameter that changes results always
    changes the key. Base entries keep their historical key (the
    ``params`` field is only present for variants), so existing caches
    stay warm.
    """
    info = REGISTRY.info(algorithm)
    payload = {
        "kind": "run-request",
        "schema": SCHEMA_VERSION,
        "record": RECORD_VERSION,
        "algorithm": info.base,
        "instance": instance_to_dict(instance),
    }
    if info.params:
        payload["params"] = dict(info.params)
    return stable_hash(payload)


def evaluate_request(request: RunRequest) -> dict[str, Any]:
    """Evaluate one cell and return its JSON-able payload.

    Module-level (not a method) so worker processes can unpickle it by
    name; called identically by the serial path, which is what makes
    ``workers=1`` and ``workers=N`` byte-for-byte interchangeable.
    """
    info = REGISTRY.info(request.algorithm)
    outcome = REGISTRY.run(request.algorithm, request.instance)
    ratio = g = math.nan
    if info.certificate is not None:
        cert = info.certificate(outcome.raw)
        ratio = float(cert.ratio)
        g = float(cert.g)
    schedule = outcome.schedule
    return {
        "kind": "run-record",
        "schema": SCHEMA_VERSION,
        "record": RECORD_VERSION,
        # info.name is canonical: every spelling of a variant spec
        # produces the identical record payload.
        "algorithm": info.name,
        "cost": float(schedule.cost),
        "energy": float(schedule.energy),
        "lost_value": float(schedule.lost_value),
        "acceptance": float(schedule.finished.mean()) if len(schedule.finished) else 1.0,
        "certified_ratio": ratio,
        "dual_g": g,
        "schedule": schedule_to_dict(schedule),
    }


def _record_from_payload(
    payload: dict[str, Any], *, key: str, cached: bool, tag: Mapping[str, Any] | None
) -> RunRecord:
    return RunRecord(
        algorithm=payload["algorithm"],
        cost=float(payload["cost"]),
        energy=float(payload["energy"]),
        lost_value=float(payload["lost_value"]),
        acceptance=float(payload["acceptance"]),
        certified_ratio=float(payload["certified_ratio"]),
        dual_g=float(payload["dual_g"]),
        schedule=payload["schedule"],
        key=key,
        cached=cached,
        tag=tag,
    )


def record_to_payload(record: RunRecord) -> dict[str, Any]:
    """Serialize a record (shard files, archival) — JSON-able, lossless.

    ``certified_ratio`` / ``dual_g`` may be ``NaN``; the payload is
    meant for :func:`json.dump` with the default (Python-dialect)
    ``allow_nan=True``, which round-trips them.
    """
    return {
        "kind": "run-record",
        "schema": SCHEMA_VERSION,
        "record": RECORD_VERSION,
        "algorithm": record.algorithm,
        "cost": record.cost,
        "energy": record.energy,
        "lost_value": record.lost_value,
        "acceptance": record.acceptance,
        "certified_ratio": record.certified_ratio,
        "dual_g": record.dual_g,
        "schedule": record.schedule,
        "key": record.key,
        "cached": record.cached,
        "tag": dict(record.tag) if record.tag is not None else None,
    }


def record_from_payload(payload: dict[str, Any]) -> RunRecord:
    """Inverse of :func:`record_to_payload`, with version validation."""
    if payload.get("kind") != "run-record":
        raise InvalidParameterError(
            f"expected a 'run-record' payload, got {payload.get('kind')!r}"
        )
    if (
        payload.get("schema") != SCHEMA_VERSION
        or payload.get("record") != RECORD_VERSION
    ):
        raise InvalidParameterError(
            f"record payload versions (schema={payload.get('schema')!r}, "
            f"record={payload.get('record')!r}) do not match this build "
            f"(schema={SCHEMA_VERSION}, record={RECORD_VERSION})"
        )
    return _record_from_payload(
        payload,
        key=str(payload.get("key", "")),
        cached=bool(payload.get("cached", False)),
        tag=payload.get("tag"),
    )


def _check_shard(shard: tuple[int, int]) -> tuple[int, int]:
    try:
        index, count = shard
    except (TypeError, ValueError):
        raise InvalidParameterError(
            f"shard must be an (index, count) pair, got {shard!r}"
        ) from None
    if not isinstance(index, int) or not isinstance(count, int):
        raise InvalidParameterError(
            f"shard indices must be ints, got {shard!r}"
        )
    if count < 1 or not 0 <= index < count:
        raise InvalidParameterError(
            f"shard index must satisfy 0 <= index < count, got {shard!r}"
        )
    return index, count


def shard_requests(
    requests: Sequence[RunRequest], shard: tuple[int, int]
) -> list[RunRequest]:
    """The deterministic subset of ``requests`` owned by one shard.

    Shard ``(i, k)`` owns positions ``i, i+k, i+2k, ...`` of the
    request list — a pure function of position, so any machine that can
    enumerate the same request list (the point of declarative specs)
    agrees on the split without coordination, and round-robin keeps the
    shards balanced even when cost correlates with grid position.
    """
    index, count = _check_shard(shard)
    return list(requests[index::count])


def merge_shards(shards: Sequence[Sequence[RunRecord]]) -> list[RunRecord]:
    """Recombine per-shard record lists into full-run request order.

    ``shards[i]`` must be the records of shard ``(i, len(shards))`` over
    one common request list; the result is exactly what an unsharded
    ``run`` of that list returns. Shapes are validated (shard ``i`` of
    ``k`` owns ``ceil((n - i) / k)`` positions), so passing shards from
    different sweeps, a missing shard, or a wrong order fails loudly
    instead of silently interleaving garbage.
    """
    count = len(shards)
    if count == 0:
        raise InvalidParameterError("need at least one shard to merge")
    total = sum(len(s) for s in shards)
    for index, records in enumerate(shards):
        expected = (total - index + count - 1) // count
        if len(records) != expected:
            raise InvalidParameterError(
                f"shard {index}/{count} has {len(records)} records, "
                f"expected {expected} of {total} total — shards are "
                "incomplete, duplicated, or from different request lists"
            )
    return [shards[pos % count][pos // count] for pos in range(total)]


@dataclass
class RunnerStats:
    """Cumulative work accounting of a :class:`BatchRunner`.

    ``computed`` counts algorithm evaluations; ``cache_hits`` requests
    served from the on-disk cache; ``deduplicated`` requests that
    repeated another cell of the same batch and reused its result
    (possible with or without a cache).
    """

    computed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0

    @property
    def total(self) -> int:
        return self.computed + self.cache_hits + self.deduplicated


class BatchRunner:
    """Evaluates request grids, optionally in parallel and/or cached.

    Parameters
    ----------
    workers:
        ``1`` runs cells serially in-process (no pool, no pickling —
        also the mode where monkeypatching registry runners works, which
        tests rely on). ``> 1`` fans uncached cells out to that many
        worker processes.
    cache:
        ``None`` (no caching), a directory path (opened as a
        :class:`~repro.engine.cache.DirectoryCache`), or any ready
        :class:`~repro.engine.cache.CacheBackend` — e.g. a
        :class:`~repro.engine.cache.SqliteCache`. Hits skip evaluation
        entirely; backends are interchangeable bit for bit.
    """

    def __init__(
        self, *, workers: int = 1, cache: CacheBackend | str | Path | None = None
    ) -> None:
        if not isinstance(workers, int) or workers < 1:
            raise InvalidParameterError(
                f"workers must be an int >= 1, got {workers!r}"
            )
        self.workers = workers
        if isinstance(cache, (str, Path)):
            cache = DirectoryCache(cache)
        elif cache is not None and not (
            hasattr(cache, "get") and hasattr(cache, "put")
        ):
            raise InvalidParameterError(
                f"cache must be a path or a CacheBackend, got {cache!r}"
            )
        self.cache = cache
        self.stats = RunnerStats()

    def reset_stats(self) -> None:
        self.stats = RunnerStats()

    # ------------------------------------------------------------------
    def run_one(self, algorithm: str, instance: Instance) -> RunRecord:
        """Convenience wrapper: evaluate a single cell."""
        return self.run([RunRequest(algorithm, instance)])[0]

    def run(
        self,
        requests: Sequence[RunRequest],
        *,
        shard: tuple[int, int] | None = None,
    ) -> list[RunRecord]:
        """Evaluate all cells; results are in request order.

        Duplicate cells (same algorithm + instance content) are computed
        once and fanned back out to every requesting position.

        ``shard=(i, k)`` evaluates only the deterministic ``i``-th of
        ``k`` slices of the request list (see :func:`shard_requests`)
        and returns that slice's records; :func:`merge_shards`
        recombines the ``k`` slices into the unsharded result, so a
        grid can be split across machines and recombined into
        bit-identical measurements. (Only the ``cached`` bookkeeping
        flag can differ, since it reflects each shard's own cache
        state.)
        """
        requests = (
            list(requests) if shard is None else shard_requests(requests, shard)
        )
        keys = [request_key(r.algorithm, r.instance) for r in requests]

        payloads: dict[str, dict[str, Any]] = {}
        fresh: set[str] = set()
        if self.cache is not None:
            for key in keys:
                if key not in payloads:
                    hit = self.cache.get(key)
                    if hit is not None:
                        payloads[key] = hit

        # Unique cells still to compute, in first-appearance order.
        pending: list[tuple[str, RunRequest]] = []
        seen: set[str] = set(payloads)
        for key, request in zip(keys, requests):
            if key not in seen:
                seen.add(key)
                pending.append((key, request))

        if pending:
            if self.workers == 1 or len(pending) == 1:
                computed = [evaluate_request(r) for _, r in pending]
            else:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    computed = list(
                        pool.map(evaluate_request, [r for _, r in pending])
                    )
            for (key, _), payload in zip(pending, computed):
                payloads[key] = payload
                fresh.add(key)
                if self.cache is not None:
                    self.cache.put(key, payload)

        # Work accounting: one computation per distinct evaluated cell;
        # every other request was served either from the on-disk cache
        # or by repeating an in-batch duplicate.
        self.stats.computed += len(pending)

        records = []
        delivered_fresh: set[str] = set()
        for key, request in zip(keys, requests):
            if key in fresh:
                # Freshly evaluated this batch: the first occurrence is
                # the computation, later ones are in-batch duplicates.
                cached = key in delivered_fresh
                if cached:
                    self.stats.deduplicated += 1
                delivered_fresh.add(key)
            else:
                cached = True
                self.stats.cache_hits += 1
            records.append(
                _record_from_payload(
                    payloads[key], key=key, cached=cached, tag=request.tag
                )
            )
        return records
