"""Streaming batch execution of (algorithm × instance) grids.

The shape every experiment in this library shares — "run these
algorithms on these instances and collect per-cell summaries" — lives
here, once. The core is a *streaming* generator:
:meth:`BatchRunner.iter_records` yields one ``(index, record)`` pair per
:class:`RunRequest` cell **as results complete** (cache hits first, then
pool futures in completion order), so callers can render progress, feed
dashboards, or bail early on very large grids without holding every
record in memory. :meth:`BatchRunner.run` is a thin collecting wrapper
that reorders the stream back into **request order** — byte-identical to
the records the historical eager implementation returned.

Records are plain JSON-able measurements (cost, energy, acceptance,
certified ratio, per-cell wall time, the full serialized schedule),
which buys two properties at once:

* **parallel == serial**: worker processes ship back the exact payload a
  serial run would produce, so results are bit-identical whatever the
  worker count (``wall_time`` is the one measured, non-deterministic
  field; it is excluded from record equality);
* **cacheable**: the same payload is what the content-addressed
  :class:`~repro.engine.cache.ResultCache` stores, so a cache hit is
  indistinguishable from a fresh run (and a warm sweep recomputes
  nothing — only changed cells miss). The stored wall time is the
  *original* measured cost of the cell, which is what feeds the
  measured-cost shard scheduler (:func:`shard_assignment` with
  ``strategy="lpt"`` over :meth:`BatchRunner.estimate_costs`).

The certified ratio is filled for exactly the algorithms whose registry
entry declares the ``certificate-producing`` capability; other cells
carry ``NaN`` there, never a fake number.
"""

from __future__ import annotations

import heapq
import math
import queue
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Protocol, Sequence

from ..errors import CacheError, InvalidParameterError
from ..io.serialize import (
    SCHEMA_VERSION,
    instance_to_dict,
    schedule_to_dict,
    stable_hash,
)
from ..model.job import Instance
from .cache import CacheBackend, DirectoryCache
from .registry import REGISTRY
from .transport import (
    TRANSPORTS,
    decode_wire,
    evaluate_request_wire,
    resolve_transport,
)

__all__ = [
    "RunRequest",
    "RunRecord",
    "RunnerStats",
    "BatchRunner",
    "ClaimTable",
    "InProcessClaimTable",
    "request_key",
    "evaluate_request",
    "merge_shards",
    "shard_assignment",
    "shard_requests",
    "record_to_payload",
    "record_from_payload",
]

#: Bumped whenever the record payload changes shape, so stale cache
#: entries from an older build miss instead of deserializing wrongly.
#: (2: added the measured ``wall_time`` field.)
RECORD_VERSION = 2

#: Shard-scheduling strategies. ``rr`` and ``lpt`` are *static* — pure
#: functions :func:`shard_assignment` computes up front — while
#: ``steal`` is *dynamic*: membership is decided cell by cell at run
#: time through a shared :class:`ClaimTable`
#: (:meth:`BatchRunner.run_stolen`), so it has no precomputable
#: assignment vector.
SHARD_STRATEGIES = ("rr", "lpt", "steal")


class ClaimTable(Protocol):
    """What work-stealing execution needs from a claim source.

    One claim table fronts one compiled request list; ``claim(count)``
    atomically hands out up to ``count`` not-yet-claimed request
    positions (each position at most once *at a time*, across every
    cooperating worker), and an empty list means the table is drained.
    Two implementations ship: :class:`InProcessClaimTable` (threads of
    one process) and :class:`repro.engine.remote.HttpClaimTable`
    (workers on separate machines, served by ``repro cache-serve``).

    Tables may optionally implement **claim leases**: a handed-out
    position not reported via ``done(positions)`` within the table's
    lease TTL is *reissued* to a later claimer, so one crashed worker
    cannot strand tail cells. Leases trade exactly-once claiming for
    at-least-once: a position can be recomputed (the result cache makes
    the recompute cheap, and the merge step still detects genuine
    duplicates loudly). Tables without leases keep the historical
    exactly-once behavior and need no ``done``.
    """

    def claim(self, count: int = 1) -> list[int]: ...


def _check_claim_count(count: int) -> None:
    if not isinstance(count, int) or count < 1:
        raise InvalidParameterError(
            f"claim count must be an int >= 1, got {count!r}"
        )


def _check_lease_ttl(lease_ttl) -> float | None:
    if lease_ttl is None:
        return None
    if (
        not isinstance(lease_ttl, (int, float))
        or isinstance(lease_ttl, bool)
        or not math.isfinite(float(lease_ttl))
        or float(lease_ttl) <= 0.0
    ):
        raise InvalidParameterError(
            f"lease_ttl must be a positive number of seconds or None, "
            f"got {lease_ttl!r}"
        )
    return float(lease_ttl)


def _check_done_positions(positions, total: int) -> list[int]:
    out = []
    for position in positions:
        if (
            not isinstance(position, int)
            or isinstance(position, bool)
            or not 0 <= position < total
        ):
            raise InvalidParameterError(
                f"done positions must be ints in 0..{total - 1}, "
                f"got {position!r}"
            )
        out.append(position)
    return out


class InProcessClaimTable:
    """A lock-guarded claim cursor for single-host runs.

    The in-process coordinator: several runners (threads) sharing one
    instance partition ``0..total-1`` between them dynamically — each
    claims the next position the moment it finishes the last one, so a
    runner stuck on an expensive cell simply claims fewer.

    With ``lease_ttl`` set, every handed-out position carries a lease:
    if :meth:`done` is not called for it within ``lease_ttl`` seconds
    (by the table's ``clock``), the position is reissued to the next
    claimer — the crash-recovery semantics of the claim-lease protocol.
    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        total: int,
        *,
        lease_ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not isinstance(total, int) or total < 0:
            raise InvalidParameterError(
                f"claim-table total must be an int >= 0, got {total!r}"
            )
        self.total = total
        self.lease_ttl = _check_lease_ttl(lease_ttl)
        self._clock = clock
        self._cursor = 0
        #: position -> lease deadline (leased, not yet reported done)
        self._outstanding: dict[int, float] = {}
        self._done: set[int] = set()
        self._lock = threading.Lock()

    def claim(self, count: int = 1) -> list[int]:
        _check_claim_count(count)
        with self._lock:
            positions: list[int] = []
            if self.lease_ttl is not None:
                now = self._clock()
                expired = sorted(
                    position
                    for position, deadline in self._outstanding.items()
                    if deadline <= now
                )
                for position in expired:
                    if len(positions) == count:
                        break
                    self._outstanding[position] = now + self.lease_ttl
                    positions.append(position)
            take = min(count - len(positions), self.total - self._cursor)
            if take > 0:
                fresh = list(range(self._cursor, self._cursor + take))
                self._cursor += take
                if self.lease_ttl is not None:
                    deadline = self._clock() + self.lease_ttl
                    for position in fresh:
                        self._outstanding[position] = deadline
                positions.extend(fresh)
            return positions

    def done(self, positions: Sequence[int]) -> None:
        """Report computed positions; their leases stop being reissuable."""
        checked = _check_done_positions(positions, self.total)
        with self._lock:
            for position in checked:
                self._outstanding.pop(position, None)
                self._done.add(position)

    def pending(self) -> int:
        """Leased positions not yet reported done.

        Nonzero after an empty :meth:`claim` means the table is not
        drained — those cells will either be reported done by their
        holders or expire back into the queue, so a lease-aware worker
        waits instead of exiting (the crash-recovery guarantee needs a
        survivor still claiming when the leases expire).
        """
        with self._lock:
            return len(self._outstanding)

    @property
    def done_count(self) -> int:
        """Positions reported done so far."""
        with self._lock:
            return len(self._done)

    @property
    def remaining(self) -> int:
        with self._lock:
            return self.total - self._cursor


@dataclass(frozen=True)
class RunRequest:
    """One grid cell: an algorithm name, an instance, and caller context.

    ``tag`` is an arbitrary JSON-able mapping the caller threads through
    to the record (sweep parameters, seed, ...); it does not participate
    in the cache key — only the algorithm and the instance content do.

    ``batch`` selects the execution strategy for algorithms that have an
    epoch-batched main loop (``"arrival"`` / ``"epoch"``; ``None`` means
    the ambient default). It is bit-parity-tested to never change a
    result, so — like ``tag`` — it stays out of the cache key: records
    computed under either mode are interchangeable.
    """

    algorithm: str
    instance: Instance
    tag: Mapping[str, Any] | None = None
    batch: str | None = None


@dataclass(frozen=True)
class RunRecord:
    """The measurements of one evaluated cell.

    ``schedule`` is the full :func:`~repro.io.serialize.schedule_to_dict`
    form — everything needed to audit or replay the cell offline.
    ``certified_ratio`` / ``dual_g`` are ``NaN`` unless the algorithm's
    registry entry produces certificates. ``cached`` tells whether this
    record was served without a fresh evaluation for this request —
    from the on-disk result cache, or from an identical cell earlier in
    the same batch.

    ``wall_time`` is the measured evaluation cost of the cell in
    seconds. A cached record carries the time of the *original*
    computation (that is what the LPT shard scheduler wants), and the
    field is excluded from equality/comparison — it is a measurement of
    the machine, not of the algorithm, so two otherwise-identical
    records still compare equal.
    """

    algorithm: str
    cost: float
    energy: float
    lost_value: float
    acceptance: float
    certified_ratio: float
    dual_g: float
    schedule: dict[str, Any] = field(repr=False)
    key: str = ""
    cached: bool = False
    tag: Mapping[str, Any] | None = None
    wall_time: float = field(default=math.nan, compare=False)

    @property
    def finished(self) -> tuple[bool, ...]:
        """Per-job finished flags, in the schedule's job order."""
        return tuple(bool(f) for f in self.schedule["finished"])


def request_key(algorithm: str, instance: Instance) -> str:
    """Content address of a cell: algorithm (+ parsed variant
    parameters) + full instance content.

    Variant specs are resolved through the registry first, so every
    spelling of the same variant (``pd?delta=0.05`` / ``pd?delta=5e-2``)
    keys identically, and a parameter that changes results always
    changes the key. Base entries and variants share one key *scheme*
    (the ``params`` field is only present for variants), but every key
    also folds in :data:`RECORD_VERSION` — so a payload-shape bump
    (such as the one that added ``wall_time``) deliberately cold-starts
    existing caches rather than serving records an older build wrote.
    """
    info = REGISTRY.info(algorithm)
    payload = {
        "kind": "run-request",
        "schema": SCHEMA_VERSION,
        "record": RECORD_VERSION,
        "algorithm": info.base,
        "instance": instance_to_dict(instance),
    }
    if info.params:
        payload["params"] = dict(info.params)
    return stable_hash(payload)


def evaluate_request(request: RunRequest) -> dict[str, Any]:
    """Evaluate one cell and return its JSON-able payload.

    Module-level (not a method) so worker processes can unpickle it by
    name; called identically by the serial path, which is what makes
    ``workers=1`` and ``workers=N`` byte-for-byte interchangeable.

    The measured ``wall_time`` covers the algorithm run *and* its
    certificate evaluation — the full cost of the cell, which is what a
    cost-aware scheduler needs to balance.
    """
    from ..perf.epochs import batch_mode

    info = REGISTRY.info(request.algorithm)
    start = time.perf_counter()
    # The ambient batch mode reaches the registered entry points without
    # widening every registry signature; ``None`` is a no-op wrap.
    with batch_mode(request.batch):
        outcome = REGISTRY.run(request.algorithm, request.instance)
    ratio = g = math.nan
    if info.certificate is not None:
        cert = info.certificate(outcome.raw)
        ratio = float(cert.ratio)
        g = float(cert.g)
    elapsed = time.perf_counter() - start
    schedule = outcome.schedule
    return {
        "kind": "run-record",
        "schema": SCHEMA_VERSION,
        "record": RECORD_VERSION,
        # info.name is canonical: every spelling of a variant spec
        # produces the identical record payload.
        "algorithm": info.name,
        "cost": float(schedule.cost),
        "energy": float(schedule.energy),
        "lost_value": float(schedule.lost_value),
        "acceptance": float(schedule.finished.mean()) if len(schedule.finished) else 1.0,
        "certified_ratio": ratio,
        "dual_g": g,
        "schedule": schedule_to_dict(schedule),
        "wall_time": elapsed,
    }


def _record_from_payload(
    payload: dict[str, Any], *, key: str, cached: bool, tag: Mapping[str, Any] | None
) -> RunRecord:
    return RunRecord(
        algorithm=payload["algorithm"],
        cost=float(payload["cost"]),
        energy=float(payload["energy"]),
        lost_value=float(payload["lost_value"]),
        acceptance=float(payload["acceptance"]),
        certified_ratio=float(payload["certified_ratio"]),
        dual_g=float(payload["dual_g"]),
        schedule=payload["schedule"],
        key=key,
        cached=cached,
        tag=tag,
        wall_time=float(payload.get("wall_time", math.nan)),
    )


def record_to_payload(record: RunRecord) -> dict[str, Any]:
    """Serialize a record (shard files, archival) — JSON-able, lossless.

    ``certified_ratio`` / ``dual_g`` / ``wall_time`` may be ``NaN``; the
    payload is meant for :func:`json.dump` with the default
    (Python-dialect) ``allow_nan=True``, which round-trips them.
    """
    return {
        "kind": "run-record",
        "schema": SCHEMA_VERSION,
        "record": RECORD_VERSION,
        "algorithm": record.algorithm,
        "cost": record.cost,
        "energy": record.energy,
        "lost_value": record.lost_value,
        "acceptance": record.acceptance,
        "certified_ratio": record.certified_ratio,
        "dual_g": record.dual_g,
        "schedule": record.schedule,
        "key": record.key,
        "cached": record.cached,
        "tag": dict(record.tag) if record.tag is not None else None,
        "wall_time": record.wall_time,
    }


#: Every key :func:`record_to_payload` emits — the full vocabulary of a
#: record payload. :func:`record_from_payload` rejects anything else:
#: an unknown key means the payload came from a different build (or was
#: hand-edited), and silently dropping it would quietly lose data.
_RECORD_PAYLOAD_KEYS = frozenset({
    "kind",
    "schema",
    "record",
    "algorithm",
    "cost",
    "energy",
    "lost_value",
    "acceptance",
    "certified_ratio",
    "dual_g",
    "schedule",
    "key",
    "cached",
    "tag",
    "wall_time",
})


def record_from_payload(payload: dict[str, Any]) -> RunRecord:
    """Inverse of :func:`record_to_payload`, with version validation.

    Unknown keys raise a clear :class:`~repro.errors.ReproError`
    (rather than being silently dropped), and the measured ``wall_time``
    round-trips losslessly.
    """
    if payload.get("kind") != "run-record":
        raise InvalidParameterError(
            f"expected a 'run-record' payload, got {payload.get('kind')!r}"
        )
    unknown = set(payload) - _RECORD_PAYLOAD_KEYS
    if unknown:
        raise InvalidParameterError(
            f"unknown record payload key(s) {sorted(unknown)}; this build "
            f"understands exactly {sorted(_RECORD_PAYLOAD_KEYS)} — refusing "
            "to silently drop data from a different build"
        )
    if (
        payload.get("schema") != SCHEMA_VERSION
        or payload.get("record") != RECORD_VERSION
    ):
        raise InvalidParameterError(
            f"record payload versions (schema={payload.get('schema')!r}, "
            f"record={payload.get('record')!r}) do not match this build "
            f"(schema={SCHEMA_VERSION}, record={RECORD_VERSION})"
        )
    return _record_from_payload(
        payload,
        key=str(payload.get("key", "")),
        cached=bool(payload.get("cached", False)),
        tag=payload.get("tag"),
    )


def _check_shard(shard: tuple[int, int]) -> tuple[int, int]:
    try:
        index, count = shard
    except (TypeError, ValueError):
        raise InvalidParameterError(
            f"shard must be an (index, count) pair, got {shard!r}"
        ) from None
    if not isinstance(index, int) or not isinstance(count, int):
        raise InvalidParameterError(
            f"shard indices must be ints, got {shard!r}"
        )
    if count < 1 or not 0 <= index < count:
        raise InvalidParameterError(
            f"shard index must satisfy 0 <= index < count, got {shard!r}"
        )
    return index, count


def shard_assignment(
    total: int,
    count: int,
    *,
    strategy: str = "rr",
    costs: Sequence[float] | None = None,
) -> list[int]:
    """Owning shard index for each of ``total`` request positions.

    Two strategies, both pure functions of their inputs — any machine
    holding the same request list (and, for LPT, the same cost vector)
    derives the same split with no coordination:

    * ``"rr"`` (default) — positional round-robin: position ``p`` goes
      to shard ``p % count``. Cost-oblivious, byte-compatible with the
      historical split, balanced whenever cost trends along the grid.
    * ``"lpt"`` — longest-processing-time balancing over *measured*
      costs (seconds, from :meth:`BatchRunner.estimate_costs` or any
      other source): positions are taken in decreasing cost order and
      each goes to the currently least-loaded shard (ties broken by
      lowest shard index, equal costs by lowest position — fully
      deterministic). The classic 4/3-approximation to the optimal
      makespan, which matters when a grid mixes second-long exact-solver
      cells with millisecond heuristic cells.

    ``costs`` is optional for LPT (missing → all cells weigh 1.0, which
    still balances counts); non-finite or negative entries are rejected
    loudly rather than silently skewing the schedule.
    """
    if not isinstance(count, int) or count < 1:
        raise InvalidParameterError(f"shard count must be an int >= 1, got {count!r}")
    if strategy == "rr":
        return [position % count for position in range(total)]
    if strategy == "steal":
        raise InvalidParameterError(
            "'steal' is a dynamic strategy with no precomputable "
            "assignment — run it through BatchRunner.run_stolen with a "
            "ClaimTable (CLI: --shard-strategy steal --cache-url ...)"
        )
    if strategy != "lpt":
        raise InvalidParameterError(
            f"unknown shard strategy {strategy!r}; "
            f"available: {', '.join(SHARD_STRATEGIES)}"
        )
    if costs is None:
        costs = [1.0] * total
    if len(costs) != total:
        raise InvalidParameterError(
            f"need one cost per request: got {len(costs)} costs "
            f"for {total} requests"
        )
    weights = [float(cost) for cost in costs]
    bad = [c for c in weights if not math.isfinite(c) or c < 0.0]
    if bad:
        raise InvalidParameterError(
            f"LPT costs must be finite and >= 0, got {bad[:3]}"
        )
    assignment = [0] * total
    loads = [(0.0, shard) for shard in range(count)]  # already a valid heap
    for position in sorted(range(total), key=lambda p: (-weights[p], p)):
        load, shard = heapq.heappop(loads)
        assignment[position] = shard
        heapq.heappush(loads, (load + weights[position], shard))
    return assignment


def shard_requests(
    requests: Sequence[RunRequest],
    shard: tuple[int, int],
    *,
    strategy: str = "rr",
    costs: Sequence[float] | None = None,
) -> list[RunRequest]:
    """The deterministic subset of ``requests`` owned by one shard.

    The split is computed by :func:`shard_assignment` — positional
    round-robin by default (shard ``(i, k)`` owns positions
    ``i, i+k, i+2k, ...``), or measured-cost LPT balancing with
    ``strategy="lpt"``. Either way membership is a pure function of the
    request list (and cost vector), so machines agree on the split
    without coordination.
    """
    index, count = _check_shard(shard)
    assignment = shard_assignment(
        len(requests), count, strategy=strategy, costs=costs
    )
    return [
        request
        for position, request in enumerate(requests)
        if assignment[position] == index
    ]


def merge_shards(
    shards: Sequence[Sequence[RunRecord]],
    *,
    assignment: Sequence[int] | None = None,
) -> list[RunRecord]:
    """Recombine per-shard record lists into full-run request order.

    ``shards[i]`` must be the records of shard ``(i, len(shards))`` over
    one common request list; the result is exactly what an unsharded
    ``run`` of that list returns. Without ``assignment`` the split is
    assumed round-robin and shapes are validated (shard ``i`` of ``k``
    owns ``ceil((n - i) / k)`` positions); with an ``assignment`` (the
    :func:`shard_assignment` vector the shards were cut with — e.g. an
    LPT schedule) records are stitched back by position. Either way,
    passing shards from different sweeps, a missing shard, or a wrong
    order fails loudly instead of silently interleaving garbage.
    """
    count = len(shards)
    if count == 0:
        raise InvalidParameterError("need at least one shard to merge")
    total = sum(len(s) for s in shards)
    if assignment is None:
        for index, records in enumerate(shards):
            expected = (total - index + count - 1) // count
            if len(records) != expected:
                raise InvalidParameterError(
                    f"shard {index}/{count} has {len(records)} records, "
                    f"expected {expected} of {total} total — shards are "
                    "incomplete, duplicated, or from different request lists"
                )
        return [shards[pos % count][pos // count] for pos in range(total)]
    if len(assignment) != total:
        raise InvalidParameterError(
            f"assignment covers {len(assignment)} positions but the shards "
            f"hold {total} records"
        )
    owned = [0] * count
    for shard in assignment:
        if not isinstance(shard, int) or not 0 <= shard < count:
            raise InvalidParameterError(
                f"assignment names shard {shard!r} but only {count} "
                "shard record lists were given"
            )
        owned[shard] += 1
    for index, records in enumerate(shards):
        if len(records) != owned[index]:
            raise InvalidParameterError(
                f"shard {index}/{count} has {len(records)} records but the "
                f"assignment gives it {owned[index]} — shards and assignment "
                "are from different runs"
            )
    cursors = [iter(records) for records in shards]
    return [next(cursors[shard]) for shard in assignment]


@dataclass
class RunnerStats:
    """Cumulative work accounting of a :class:`BatchRunner`.

    ``computed`` counts algorithm evaluations; ``cache_hits`` requests
    served from the on-disk cache; ``deduplicated`` requests that
    repeated another cell of the same batch and reused its result
    (possible with or without a cache).
    """

    computed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0

    @property
    def total(self) -> int:
        return self.computed + self.cache_hits + self.deduplicated


#: Queue sentinel telling a :class:`_PutBatcher`'s drain thread to
#: flush what it holds and exit.
_FLUSH_STOP = object()


class _PutBatcher:
    """Background write-behind batcher for the stolen path's cache puts.

    Computed payloads are handed to a daemon thread that groups them
    into ``put_many`` calls, so the steal loop's claim/compute cycle
    never blocks on cache-write round trips — the flush half of the
    pipelined stolen sweep. Engaged only for backends exposing
    ``put_many`` (the HTTP client, tiered stacks over it), where a
    write is a network round trip worth hiding; local backends keep
    their cheap synchronous writes and immediate-visibility semantics.

    Batches flush at ``batch_size`` entries (default: the backend's
    own ``batch_size``) or after ``max_delay`` seconds of quiet,
    whichever comes first — a crashing worker therefore loses at most
    a few tens of milliseconds of finished work to the shared cache,
    and those cells' claim leases were already reported done by the
    caller, so correctness never depends on the flush. ``close()``
    drains the queue, joins the thread, and re-raises the first
    backend error it swallowed (the remote put path is lenient by
    contract, so normally there is none).
    """

    def __init__(
        self,
        cache: CacheBackend,
        *,
        batch_size: int | None = None,
        max_delay: float = 0.05,
    ) -> None:
        self._cache = cache
        if batch_size is None:
            batch_size = max(1, int(getattr(cache, "batch_size", 32)))
        self._batch_size = batch_size
        self._max_delay = max_delay
        self._queue: queue.Queue[Any] = queue.Queue()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(target=self._drain, daemon=True)
        self._thread.start()

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Enqueue one write; returns immediately."""
        self._queue.put((key, payload))

    def _flush(self, buffered: list[tuple[str, dict[str, Any]]]) -> None:
        if not buffered:
            return
        try:
            self._cache.put_many(dict(buffered))  # type: ignore[attr-defined]
        except BaseException as exc:  # noqa: BLE001 - reported at close()
            if self._failure is None:
                self._failure = exc
        buffered.clear()

    def _drain(self) -> None:
        buffered: list[tuple[str, dict[str, Any]]] = []
        while True:
            try:
                item = self._queue.get(timeout=self._max_delay)
            except queue.Empty:
                self._flush(buffered)
                continue
            if item is _FLUSH_STOP:
                self._flush(buffered)
                return
            buffered.append(item)
            if len(buffered) >= self._batch_size:
                self._flush(buffered)

    def close(self) -> None:
        """Flush everything queued, stop the thread, surface errors."""
        self._queue.put(_FLUSH_STOP)
        self._thread.join()
        if self._failure is not None:
            raise self._failure


class BatchRunner:
    """Evaluates request grids, optionally in parallel and/or cached.

    Parameters
    ----------
    workers:
        ``1`` runs cells serially in-process (no pool, no pickling —
        also the mode where monkeypatching registry runners works, which
        tests rely on). ``> 1`` fans uncached cells out to that many
        worker processes.
    cache:
        ``None`` (no caching), a directory path (opened as a
        :class:`~repro.engine.cache.DirectoryCache`), or any ready
        :class:`~repro.engine.cache.CacheBackend` — e.g. a
        :class:`~repro.engine.cache.SqliteCache`. Hits skip evaluation
        entirely; backends are interchangeable bit for bit.
    transport:
        How worker processes return result payloads: ``"shm"`` ships
        them through shared-memory segments (a constant-size ticket
        crosses the result pipe instead of the multi-megabyte record),
        ``"pickle"`` is the historical pipe transport, and ``"auto"``
        (default) probes for shared-memory support and picks
        accordingly. Irrelevant for ``workers=1``. Records are
        byte-identical whichever transport carries them — see
        :mod:`repro.engine.transport`.
    claim_batch:
        Positions leased per claim round trip on the stolen path
        (:meth:`iter_stolen`) — the ``k`` of the server's
        ``claim_next?k=N``. ``None`` (default) picks ``workers`` for
        pooled runs and 1 for serial ones (the finest stealing
        granularity, the historical behavior). Larger batches amortize
        claim latency against a remote table at the cost of coarser
        stealing: a worker holds at most one batch beyond its pool
        capacity.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        cache: CacheBackend | str | Path | None = None,
        transport: str = "auto",
        claim_batch: int | None = None,
    ) -> None:
        if not isinstance(workers, int) or workers < 1:
            raise InvalidParameterError(
                f"workers must be an int >= 1, got {workers!r}"
            )
        self.workers = workers
        if claim_batch is not None and (
            not isinstance(claim_batch, int)
            or isinstance(claim_batch, bool)
            or claim_batch < 1
        ):
            raise InvalidParameterError(
                f"claim_batch must be an int >= 1 or None, got {claim_batch!r}"
            )
        self.claim_batch = claim_batch
        if isinstance(cache, (str, Path)):
            cache = DirectoryCache(cache)
        elif cache is not None and not (
            hasattr(cache, "get") and hasattr(cache, "put")
        ):
            raise InvalidParameterError(
                f"cache must be a path or a CacheBackend, got {cache!r}"
            )
        self.cache = cache
        if transport not in TRANSPORTS:
            raise InvalidParameterError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        self.transport = transport
        self.stats = RunnerStats()

    def reset_stats(self) -> None:
        self.stats = RunnerStats()

    # ------------------------------------------------------------------
    def run_one(self, algorithm: str, instance: Instance) -> RunRecord:
        """Convenience wrapper: evaluate a single cell."""
        return self.run([RunRequest(algorithm, instance)])[0]

    def _probe_cache(
        self, keys: Sequence[str]
    ) -> Iterator[tuple[str, dict[str, Any]]]:
        """Yield ``(key, payload)`` for every cache hit among ``keys``.

        Backends with a ``get_many`` (remote/tiered) are probed in
        chunks of their ``batch_size`` — one round trip per chunk
        instead of one per key; everything else falls back to per-key
        ``get``. Either way hits stream out chunk by chunk.
        """
        fetch_many = getattr(self.cache, "get_many", None)
        if fetch_many is None:
            for key in keys:
                payload = self.cache.get(key)
                if payload is not None:
                    yield key, payload
            return
        chunk = max(1, int(getattr(self.cache, "batch_size", 32)))
        for start in range(0, len(keys), chunk):
            block = keys[start : start + chunk]
            found = fetch_many(block)
            for key in block:
                payload = found.get(key)
                if payload is not None:
                    yield key, payload

    def iter_records(
        self, requests: Sequence[RunRequest]
    ) -> Iterator[tuple[int, RunRecord]]:
        """Yield ``(index, record)`` pairs in **completion order**.

        The streaming core every other entry point wraps. ``index`` is
        the request's position in ``requests``. Cache hits stream first
        (they are complete before any work starts), then freshly
        computed cells as they finish — serially in request order for
        ``workers=1``, in pool completion order otherwise. Duplicate
        cells (same algorithm + instance content) are computed once;
        when their payload lands, every requesting position is yielded,
        the lowest marked fresh and the rest ``cached`` (in-batch
        deduplication, exactly the eager semantics).

        Each record is yielded exactly once; fully consuming the stream
        and sorting by ``index`` reproduces :meth:`run`'s output.
        """
        requests = list(requests)
        keys = [request_key(r.algorithm, r.instance) for r in requests]

        # Positions per unique cell, ascending (ascending order is what
        # makes "first occurrence is the computation" reproducible).
        positions: dict[str, list[int]] = {}
        for index, key in enumerate(keys):
            positions.setdefault(key, []).append(index)

        # Stream cache hits as they are fetched — each payload (which
        # carries a full serialized schedule) is yielded and released
        # before the next chunk is read, so a warm sweep's peak memory
        # is one probe chunk, not the whole grid. Backends exposing
        # get_many (the HTTP backend, tiered stacks over it) are probed
        # in batched round trips to amortize network latency.
        hit_keys: set[str] = set()
        if self.cache is not None:
            for key, payload in self._probe_cache(list(positions)):
                hit_keys.add(key)
                for index in positions[key]:
                    self.stats.cache_hits += 1
                    yield index, _record_from_payload(
                        payload, key=key, cached=True, tag=requests[index].tag
                    )

        # Unique cells still to compute, in first-appearance order.
        pending = [
            (key, requests[indexes[0]])
            for key, indexes in positions.items()
            if key not in hit_keys
        ]

        def deliver(
            key: str, payload: dict[str, Any]
        ) -> Iterator[tuple[int, RunRecord]]:
            self.stats.computed += 1
            if self.cache is not None:
                self.cache.put(key, payload)
            for order, index in enumerate(positions[key]):
                cached = order > 0
                if cached:
                    self.stats.deduplicated += 1
                yield index, _record_from_payload(
                    payload,
                    key=key,
                    cached=cached,
                    tag=requests[index].tag,
                )

        if not pending:
            return
        if self.workers == 1 or len(pending) == 1:
            for key, request in pending:
                yield from deliver(key, evaluate_request(request))
        else:
            transport = resolve_transport(self.transport)
            pool = ProcessPoolExecutor(max_workers=self.workers)
            try:
                futures = {
                    pool.submit(evaluate_request_wire, request, transport): key
                    for key, request in pending
                }
                for future in as_completed(futures):
                    yield from deliver(
                        futures[future], decode_wire(future.result())
                    )
            finally:
                # Reached on exhaustion, on a worker exception, and on
                # GeneratorExit when the consumer abandons the stream
                # early: cancel queued cells instead of silently
                # computing-and-discarding the rest of the grid.
                pool.shutdown(wait=False, cancel_futures=True)

    def run(
        self,
        requests: Sequence[RunRequest],
        *,
        shard: tuple[int, int] | None = None,
        strategy: str = "rr",
        costs: Sequence[float] | None = None,
        on_record: Callable[[RunRecord, int, int], None] | None = None,
    ) -> list[RunRecord]:
        """Evaluate all cells; results are in request order.

        A thin collecting wrapper over :meth:`iter_records`: the stream
        arrives in completion order and is reordered back to request
        order, so the returned list is byte-identical to the historical
        eager implementation whatever the worker count or cache state.

        ``on_record(record, done, total)`` (if given) fires once per
        record *in completion order* as results land — progress bars and
        live dashboards hook in here without giving up the ordered
        return value.

        ``shard=(i, k)`` evaluates only the deterministic ``i``-th of
        ``k`` slices of the request list (see :func:`shard_requests`;
        ``strategy``/``costs`` select and parameterize the split, with
        measured-cost LPT balancing under ``strategy="lpt"``) and
        returns that slice's records; :func:`merge_shards` recombines
        the ``k`` slices into the unsharded result, so a grid can be
        split across machines and recombined into bit-identical
        measurements. (Only the ``cached`` bookkeeping flag can differ,
        since it reflects each shard's own cache state.)
        """
        requests = (
            list(requests)
            if shard is None
            else shard_requests(requests, shard, strategy=strategy, costs=costs)
        )
        total = len(requests)
        records: list[RunRecord | None] = [None] * total
        done = 0
        for index, record in self.iter_records(requests):
            records[index] = record
            done += 1
            if on_record is not None:
                on_record(record, done, total)
        return records  # type: ignore[return-value]  # every slot filled

    def iter_stolen(
        self, requests: Sequence[RunRequest], claims: ClaimTable
    ) -> Iterator[tuple[int, RunRecord]]:
        """Work-stealing streaming execution over a shared claim table.

        Every cooperating worker holds the *same* ``requests`` list and
        a claim table fronting it; each claims positions one at a time
        and yields ``(position, record)`` pairs as they complete, so a
        worker bogged down in an expensive cell simply claims fewer —
        the queue drains into whoever is fastest *right now*, with no
        precomputed split and no cost model needed.

        Per claimed block: one claim round trip (``claim_batch``
        positions — see the constructor), one batched cache probe
        (hits stream back without occupying a pool slot), then
        evaluation — serial for ``workers=1``, otherwise on a process
        pool that keeps at most ``workers`` cells in flight. The
        pooled loop is *pipelined*: while futures compute, the next
        claim batch is already being leased and probed (the worker
        processes run independently, so those round trips overlap
        compute instead of serializing with it), and completed
        payloads flush to the cache through a background ``put_many``
        batcher when the backend has one. A worker therefore holds at
        most one claim batch beyond its pool capacity — bounded
        hoarding, traded for claim traffic that scales with batches
        instead of cells. In-batch deduplication does not apply —
        positions are claimed individually — but a shared cache gives
        duplicate cells across workers one computation in practice.

        The union of every worker's pairs is exactly the full request
        list, each position once; sorting by position reproduces the
        unsharded :meth:`run` measurements bit for bit. (With a leased
        claim table, "each position once" holds per worker — a lease
        the *same* worker re-receives after expiry is skipped here, and
        completed cells are reported back via the table's ``done`` so
        healthy workers' leases are never reissued.)
        """
        requests = list(requests)
        total = len(requests)
        # Leases are a table property: done-reporting (and the
        # wait-on-pending drain rule) apply only when the table was
        # created with a TTL — a lease-less steal sweep keeps the
        # historical exactly-once protocol and zero extra traffic.
        leased = getattr(claims, "lease_ttl", None) is not None
        report = getattr(claims, "done", None) if leased else None
        pending = getattr(claims, "pending", None) if leased else None
        poll = (
            min(max(claims.lease_ttl / 20.0, 0.005), 0.5) if leased else 0.0
        )
        seen: set[int] = set()
        completed: set[int] = set()

        def claim_new(count: int) -> tuple[list[int], str]:
            """Claim; classify the outcome and filter re-leases.

            A slow worker can outlive its own lease; the table may then
            hand a position straight back to it. Re-receipts of cells
            this worker *finished* are re-reported done (the original
            report raced the expiry); re-receipts of cells still in
            flight here are simply dropped — their lease stays live and
            the eventual completion reports it. Returns the genuinely
            new positions plus a status: ``"ok"``, ``"drained"`` (empty
            claim with no unexpired leases outstanding anywhere), or
            ``"waiting"`` (empty claim but other workers still hold
            leases — cells may yet flow back, so do not exit).
            """
            claimed = claims.claim(count)
            if not claimed:
                if pending is not None and pending():
                    return [], "waiting"
                return [], "drained"
            stale = [p for p in claimed if p in seen]
            if stale:
                if not leased:
                    # Without leases a repeat handout is a table bug,
                    # not a reissue — keep the historical loud failure.
                    raise CacheError(
                        f"claim table handed out position {stale[0]} twice — "
                        "it does not implement exactly-once claiming"
                    )
                finished = [p for p in stale if p in completed]
                if finished:
                    report(finished)
            fresh_positions = [p for p in claimed if p not in seen]
            if not fresh_positions:
                # Everything handed out was a re-lease of our own work
                # (reported or still in flight): no new cells right now,
                # but not drained either — harvest/poll, don't spin.
                return [], "waiting"
            return fresh_positions, "ok"

        def resolve(position: int) -> tuple[RunRequest, str]:
            if not isinstance(position, int) or not 0 <= position < total:
                # A fabric fault, not a parameter problem: CacheError,
                # like every other claim-table conflict.
                raise CacheError(
                    f"claim table handed out position {position!r}, valid "
                    f"range is 0..{total - 1} — claim table and request "
                    "list are out of sync"
                )
            request = requests[position]
            return request, request_key(request.algorithm, request.instance)

        # Write-behind batcher: computed payloads flush to the cache on
        # a background thread through put_many, so the steal loop never
        # blocks on a cache-write round trip. Backends without put_many
        # (local disk, memory) keep synchronous writes — they are cheap
        # and their immediate visibility is part of their contract.
        flusher = (
            _PutBatcher(self.cache)
            if self.cache is not None and hasattr(self.cache, "put_many")
            else None
        )

        def fresh(
            position: int, key: str, payload: dict[str, Any]
        ) -> tuple[int, RunRecord]:
            self.stats.computed += 1
            if flusher is not None:
                flusher.put(key, payload)
            elif self.cache is not None:
                self.cache.put(key, payload)
            return position, _record_from_payload(
                payload, key=key, cached=False, tag=requests[position].tag
            )

        def claim_block(count: int) -> tuple[
            list[tuple[int, RunRequest, str, dict[str, Any] | None]], str
        ]:
            """One pipeline stage: claim a block, batch-probe the cache.

            Returns ``(staged, status)`` where each staged element is
            ``(position, request, key, hit_payload_or_None)``. Hits are
            done-reported here, one round trip per block, so their
            leases clear as soon as they are known good.
            """
            claimed, status = claim_new(count)
            if status != "ok":
                return [], status
            resolved = [resolve(position) for position in claimed]
            seen.update(claimed)
            hits = (
                dict(self._probe_cache([key for _, key in resolved]))
                if self.cache is not None
                else {}
            )
            hit_positions = [
                position
                for position, (_, key) in zip(claimed, resolved)
                if key in hits
            ]
            if hit_positions:
                completed.update(hit_positions)
                if report is not None:
                    report(hit_positions)
            return [
                (position, request, key, hits.get(key))
                for position, (request, key) in zip(claimed, resolved)
            ], "ok"

        if self.workers == 1:
            # Serial path: claim_batch defaults to 1 — the finest
            # stealing granularity — but honors an explicit batch, which
            # turns N claim round trips and N probes into one of each.
            batch = self.claim_batch or 1
            try:
                while True:
                    staged, status = claim_block(batch)
                    if status == "drained":
                        return
                    if status == "waiting":
                        time.sleep(poll)
                        continue
                    for position, request, key, payload in staged:
                        if payload is not None:
                            self.stats.cache_hits += 1
                            record = _record_from_payload(
                                payload, key=key, cached=True, tag=request.tag
                            )
                        else:
                            _, record = fresh(
                                position, key, evaluate_request(request)
                            )
                            completed.add(position)
                            if report is not None:
                                report([position])
                        yield position, record
            finally:
                if flusher is not None:
                    flusher.close()

        batch = self.claim_batch or self.workers
        transport = resolve_transport(self.transport)
        pool = ProcessPoolExecutor(max_workers=self.workers)
        in_flight: dict[Any, tuple[int, str]] = {}
        ready: deque[tuple[int, RunRequest, str, dict[str, Any] | None]] = (
            deque()
        )
        drained = False
        try:
            while True:
                waiting = False
                # Drain the staged queue: hits stream straight out
                # without occupying a slot, misses fill free slots.
                while ready:
                    position, request, key, payload = ready[0]
                    if payload is not None:
                        ready.popleft()
                        self.stats.cache_hits += 1
                        yield position, _record_from_payload(
                            payload, key=key, cached=True, tag=request.tag
                        )
                    elif len(in_flight) < self.workers:
                        ready.popleft()
                        future = pool.submit(
                            evaluate_request_wire, request, transport
                        )
                        in_flight[future] = (position, key)
                    else:
                        break
                # Prefetch: with nothing staged, claim+probe the next
                # block *now* — while the pool is computing — so the
                # next free slot finds work already staged instead of
                # waiting out a claim and a probe round trip. Bounded
                # hoarding: never more than one batch beyond capacity.
                if not drained and not ready:
                    staged, status = claim_block(batch)
                    if status == "drained":
                        drained = True
                    elif status == "waiting":
                        # Other workers hold live leases; cells may yet
                        # flow back. Keep harvesting (or idle-poll
                        # below) instead of exiting — the crash-recovery
                        # guarantee needs a claimer alive at expiry.
                        waiting = True
                    elif staged:
                        ready.extend(staged)
                        continue
                if in_flight:
                    done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                    pairs = []
                    for future in done:
                        position, key = in_flight.pop(future)
                        pairs.append(
                            fresh(position, key, decode_wire(future.result()))
                        )
                        completed.add(position)
                    if report is not None:
                        # One done round trip per harvest, not per cell.
                        report([position for position, _ in pairs])
                    for pair in pairs:
                        yield pair
                    continue
                if ready:
                    continue
                if drained:
                    return
                if waiting:
                    time.sleep(poll)
                    continue
                return
        finally:
            # Reached on exhaustion, on a worker exception, and on
            # GeneratorExit: cancel queued cells instead of silently
            # computing-and-discarding. Unstarted claimed cells are
            # lost to this claim session — the merge step detects the
            # hole loudly rather than re-issuing positions. The flush
            # batcher drains after the pool stops feeding it.
            pool.shutdown(wait=False, cancel_futures=True)
            if flusher is not None:
                flusher.close()

    def run_stolen(
        self,
        requests: Sequence[RunRequest],
        claims: ClaimTable,
        *,
        on_record: Callable[[RunRecord, int, int], None] | None = None,
    ) -> list[tuple[int, RunRecord]]:
        """Drain the claim table; return this worker's ``(position,
        record)`` pairs sorted by position.

        The work-stealing analogue of :meth:`run`: positions are
        ascending (a worker's records are in request order for the
        positions it won), so concatenating every worker's pairs and
        sorting by position is byte-identical to the unsharded run.
        ``on_record(record, done, total)`` fires in completion order;
        ``total`` is the full grid size — how much of it this worker
        ends up doing is decided by the stealing itself.
        """
        pairs: list[tuple[int, RunRecord]] = []
        seen: set[int] = set()
        done = 0
        for position, record in self.iter_stolen(requests, claims):
            if position in seen:
                raise CacheError(
                    f"claim table handed out position {position} twice — "
                    "it does not implement exactly-once claiming"
                )
            seen.add(position)
            pairs.append((position, record))
            done += 1
            if on_record is not None:
                on_record(record, done, len(requests))
        pairs.sort(key=lambda pair: pair[0])
        return pairs

    def estimate_costs(
        self, requests: Sequence[RunRequest], *, default: float = 1.0
    ) -> list[float]:
        """Per-request cost estimates (seconds) from prior cached runs.

        Reads the measured ``wall_time`` each request's payload stored
        in the cache backend — any :class:`~repro.engine.cache.
        CacheBackend` works, which is how a warm sweep's timings become
        the next sweep's LPT schedule. A backend exposing ``get_timing``
        (the :class:`~repro.engine.cache.SqliteCache` column, the
        :class:`~repro.engine.cache.DirectoryCache` ``.timing`` sidecar)
        answers without parsing full payloads, and one exposing bulk
        ``get_timings`` (the HTTP backend, tiered stacks) answers the
        whole request list in batched round trips instead of one per
        key. Requests with no cached timing (or a timing from a build
        that predates measurement) estimate at ``default``, so a cold
        cache degrades to count balancing rather than failing.
        """
        if self.cache is None:
            return [float(default)] * len(requests)
        keys = [
            request_key(request.algorithm, request.instance)
            for request in requests
        ]
        memo: dict[str, float] = {}  # duplicate cells share one lookup
        bulk = getattr(self.cache, "get_timings", None)
        probe = getattr(self.cache, "get_timing", None)
        if bulk is not None:
            unique = list(dict.fromkeys(keys))
            fetched = bulk(unique)

            def lookup(key: str) -> float | None:
                return fetched.get(key)
        elif probe is not None:
            lookup = probe
        else:

            def lookup(key: str) -> float | None:
                payload = self.cache.get(key)
                return payload.get("wall_time") if payload is not None else None

        estimates = []
        for key in keys:
            estimate = memo.get(key)
            if estimate is None:
                cost = lookup(key)
                if (
                    cost is None
                    or not math.isfinite(float(cost))
                    or float(cost) < 0.0
                ):
                    estimate = float(default)
                else:
                    estimate = float(cost)
                memo[key] = estimate
            estimates.append(estimate)
        return estimates
