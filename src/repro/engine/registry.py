"""Capability-aware algorithm registry — the engine's naming layer.

Every scheduler in the library registers itself here (via the
:func:`register_algorithm` decorator placed next to its implementation in
:mod:`repro.core`, :mod:`repro.classical`, :mod:`repro.offline`, and
:mod:`repro.profit`) together with *capability metadata*:

* ``profit_aware`` — respects job values (may reject unprofitable jobs);
* ``online`` — consumes jobs in arrival order with no future knowledge;
* ``multiprocessor`` — accepts instances with ``m > 1``;
* ``certificate`` — a hook producing a machine-checkable
  :class:`~repro.analysis.certificates.DualCertificate` from the raw run
  result (present iff the algorithm is certificate-producing).

The metadata is what lets generic layers stay generic: the batch runner
records a certified ratio for exactly the algorithms that can produce
one, sweeps select comparators by capability instead of hard-coding
names, and the CLI can explain what each name is.

**Variant specs.** A lookup name may carry parameters in a query-string
form — ``pd?delta=0.05``, ``pd-aug?epsilon=0.3&delta=0.01`` — resolved
against the base entry's declared ``variant_params`` (name → caster).
The resolved :class:`AlgorithmInfo` is first-class: same capability
metadata and certificate hook as the base entry, canonical name
(parameters sorted, values in shortest round-tripping form), and the
parsed parameters exposed as ``info.params`` so the batch runner can
fold them into cache keys. Unknown parameters, unknown bases, and
malformed specs all fail loudly.

:mod:`repro.core.simulator` remains the stable public façade
(``run_algorithm`` / ``available_algorithms``); it is now a thin shim
over the global :data:`REGISTRY` defined here.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Callable, Iterator, Mapping

from ..errors import InvalidParameterError
from ..model.job import Instance
from ..model.schedule import Schedule

__all__ = [
    "AlgorithmInfo",
    "AlgorithmRegistry",
    "RunOutcome",
    "REGISTRY",
    "register_algorithm",
    "parse_variant_name",
    "canonical_variant_name",
]

#: Empty immutable mapping used as the default for param dicts (a shared
#: singleton keeps frozen-dataclass defaults hashable-free and cheap).
_EMPTY: Mapping[str, Any] = MappingProxyType({})


def _format_param_value(value: Any) -> str:
    """Canonical text of one variant-parameter value.

    Floats and ints render via ``repr`` (shortest round-tripping form:
    ``0.05``, not ``5e-2``), strings as themselves — so parsing the
    rendered name reproduces the exact value, and two spellings of the
    same value canonicalize to the same name (hence the same cache key).
    """
    if isinstance(value, str):
        return value
    return repr(value)


def parse_variant_name(name: str) -> tuple[str, dict[str, str]]:
    """Split ``base?k1=v1&k2=v2`` into ``(base, raw_params)``.

    Values stay raw strings here — casting needs the base entry's
    declared parameter table, which is the registry's job. A name with
    no ``?`` parses as ``(name, {})``. Malformed specs (empty base,
    empty parameter list, missing ``=``, empty key/value, duplicate
    key) raise :class:`~repro.errors.InvalidParameterError`.
    """
    base, sep, query = name.partition("?")
    if not sep:
        return name, {}
    if not base:
        raise InvalidParameterError(f"variant spec {name!r} has an empty base name")
    if not query:
        raise InvalidParameterError(
            f"variant spec {name!r} has an empty parameter list "
            "(drop the '?' or add key=value pairs)"
        )
    raw: dict[str, str] = {}
    for pair in query.split("&"):
        key, eq, value = pair.partition("=")
        if not eq or not key or not value:
            raise InvalidParameterError(
                f"malformed variant parameter {pair!r} in {name!r}; "
                "expected key=value"
            )
        if key in raw:
            raise InvalidParameterError(
                f"duplicate variant parameter {key!r} in {name!r}"
            )
        raw[key] = value
    return base, raw


def canonical_variant_name(base: str, params: Mapping[str, Any]) -> str:
    """The canonical display/lookup name of a parameterized variant.

    Parameters are sorted by key and values rendered in their shortest
    round-tripping form, so every spelling of the same variant maps to
    one name (``pd?delta=5e-2`` → ``pd?delta=0.05``).
    """
    if not params:
        return base
    query = "&".join(
        f"{key}={_format_param_value(params[key])}" for key in sorted(params)
    )
    return f"{base}?{query}"


def _bind_variant(base_runner: Callable[..., Any], params: Mapping[str, Any]):
    """A nullary-style runner with the variant's parameters bound.

    Workers resolve variants by name inside their own process (the
    bound closure is never pickled), so parameterized cells parallelize
    exactly like base ones.
    """

    def runner(instance: Instance) -> tuple[Schedule, object]:
        return base_runner(instance, **params)

    return runner

#: Modules whose import registers the built-in algorithms. Imported
#: lazily on first lookup so that ``import repro.engine`` stays cheap and
#: cycle-free (these modules themselves import this one for the
#: decorator).
_BUILTIN_MODULES = (
    "repro.core.pd",
    "repro.core.cll",
    "repro.core.policies",
    "repro.classical.yds",
    "repro.classical.oa",
    "repro.classical.avr",
    "repro.classical.bkp",
    "repro.classical.qoa",
    "repro.offline.convex",
    "repro.offline.optimal",
    "repro.profit.augmented",
)

Runner = Callable[[Instance], tuple[Schedule, object]]


@dataclass(frozen=True)
class RunOutcome:
    """Normalized result of running any registered algorithm."""

    name: str
    schedule: Schedule
    raw: object

    @property
    def cost(self) -> float:
        return self.schedule.cost

    @property
    def energy(self) -> float:
        return self.schedule.energy


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registered algorithm: its runner plus capability metadata.

    ``runner`` maps an instance to ``(schedule, raw_result)`` — the same
    normalized form the old simulator registry used. ``certificate``
    (when present) maps the *raw* result to a dual certificate; its
    presence defines the ``certificate-producing`` capability.

    ``variant_params`` (name → caster) declares the tunable knobs a
    base entry accepts through ``base?key=value`` variant specs; the
    registered runner must then accept them as keyword arguments. On a
    *resolved variant*, ``base`` is the base entry's name and
    ``params`` holds the parsed values; base entries have
    ``base == name`` and empty ``params``.
    """

    name: str
    runner: Runner = field(repr=False)
    profit_aware: bool = False
    online: bool = True
    multiprocessor: bool = False
    certificate: Callable[[Any], Any] | None = field(default=None, repr=False)
    summary: str = ""
    variant_params: Mapping[str, Callable[[str], Any]] = field(
        default_factory=lambda: _EMPTY, repr=False
    )
    base: str = ""
    params: Mapping[str, Any] = field(default_factory=lambda: _EMPTY)

    def __post_init__(self) -> None:
        if not self.base:
            object.__setattr__(self, "base", self.name)

    @property
    def produces_certificate(self) -> bool:
        return self.certificate is not None

    def capabilities(self) -> frozenset[str]:
        """The capability tags, as a set of stable strings."""
        tags = set()
        if self.profit_aware:
            tags.add("profit-aware")
        tags.add("online" if self.online else "offline")
        if self.multiprocessor:
            tags.add("multiprocessor")
        if self.produces_certificate:
            tags.add("certificate-producing")
        return frozenset(tags)


class AlgorithmRegistry:
    """String → :class:`AlgorithmInfo` mapping with capability queries."""

    def __init__(self) -> None:
        self._infos: dict[str, AlgorithmInfo] = {}
        self._variants: dict[str, AlgorithmInfo] = {}
        self._builtins_loaded = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        *,
        profit_aware: bool = False,
        online: bool = True,
        multiprocessor: bool = False,
        certificate: Callable[[Any], Any] | None = None,
        summary: str = "",
        variant_params: Mapping[str, Callable[[str], Any]] | None = None,
    ) -> Callable[[Runner], Runner]:
        """Decorator registering ``fn`` as algorithm ``name``.

        Re-registering a name overwrites it (idempotent module reloads,
        and tests that want to stub an algorithm, both rely on this).
        A ``variant_params`` table makes the entry parameterizable via
        ``name?key=value`` specs; ``fn`` must accept the declared keys
        as keyword arguments.
        """
        if "?" in name or "&" in name:
            raise InvalidParameterError(
                f"algorithm name {name!r} may not contain '?' or '&' "
                "(reserved for variant specs)"
            )

        def decorator(fn: Runner) -> Runner:
            self._infos[name] = AlgorithmInfo(
                name=name,
                runner=fn,
                profit_aware=profit_aware,
                online=online,
                multiprocessor=multiprocessor,
                certificate=certificate,
                summary=summary,
                variant_params=MappingProxyType(dict(variant_params or {})),
            )
            self._variants.clear()  # stale resolutions may bind old runners
            return fn

        return decorator

    def _ensure_builtins(self) -> None:
        if not self._builtins_loaded:
            self._builtins_loaded = True
            for module in _BUILTIN_MODULES:
                importlib.import_module(module)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """Registered algorithm names, alphabetically."""
        self._ensure_builtins()
        return tuple(sorted(self._infos))

    def info(self, name: str) -> AlgorithmInfo:
        """Metadata for one algorithm or variant spec; loud failure
        for unknown names, unknown parameters, and malformed specs."""
        self._ensure_builtins()
        if "?" in name:
            return self._resolve_variant(name)
        try:
            return self._infos[name]
        except KeyError:
            raise InvalidParameterError(
                f"unknown algorithm {name!r}; available: {', '.join(self.names())}"
            ) from None

    def _resolve_variant(self, name: str) -> AlgorithmInfo:
        """Resolve ``base?k=v&...`` into a first-class entry.

        Resolutions are memoized per canonical name; the memo is
        invalidated whenever any base entry is (re-)registered, so a
        stubbed base never serves a stale bound runner.
        """
        base_name, raw = parse_variant_name(name)
        base = self.info(base_name)
        if not base.variant_params:
            raise InvalidParameterError(
                f"algorithm {base_name!r} takes no variant parameters "
                f"(got {name!r})"
            )
        params: dict[str, Any] = {}
        for key, text in raw.items():
            caster = base.variant_params.get(key)
            if caster is None:
                raise InvalidParameterError(
                    f"unknown parameter {key!r} for algorithm {base_name!r}; "
                    f"accepted: {', '.join(sorted(base.variant_params))}"
                )
            try:
                params[key] = caster(text)
            except (TypeError, ValueError) as exc:
                raise InvalidParameterError(
                    f"bad value {text!r} for parameter {key!r} of "
                    f"{base_name!r}: {exc}"
                ) from None
        canonical = canonical_variant_name(base_name, params)
        cached = self._variants.get(canonical)
        if cached is not None:
            return cached
        info = replace(
            base,
            name=canonical,
            runner=_bind_variant(base.runner, params),
            summary=(
                f"{base.summary} [{', '.join(f'{k}={_format_param_value(v)}' for k, v in sorted(params.items()))}]"
                if base.summary
                else canonical
            ),
            base=base_name,
            params=MappingProxyType(dict(params)),
        )
        self._variants[canonical] = info
        return info

    def __contains__(self, name: str) -> bool:
        self._ensure_builtins()
        if "?" not in name:
            return name in self._infos
        try:
            self._resolve_variant(name)
        except InvalidParameterError:
            return False
        return True

    def __iter__(self) -> Iterator[AlgorithmInfo]:
        self._ensure_builtins()
        return iter(self._infos[name] for name in self.names())

    def select(
        self,
        *,
        profit_aware: bool | None = None,
        online: bool | None = None,
        multiprocessor: bool | None = None,
        produces_certificate: bool | None = None,
    ) -> tuple[AlgorithmInfo, ...]:
        """All algorithms matching the given capability constraints.

        ``None`` means "don't care"; e.g. ``select(profit_aware=True,
        multiprocessor=True)`` yields the algorithms eligible for a
        multi-processor profit experiment.
        """

        def match(info: AlgorithmInfo) -> bool:
            return (
                (profit_aware is None or info.profit_aware == profit_aware)
                and (online is None or info.online == online)
                and (multiprocessor is None or info.multiprocessor == multiprocessor)
                and (
                    produces_certificate is None
                    or info.produces_certificate == produces_certificate
                )
            )

        return tuple(info for info in self if match(info))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, name: str, instance: Instance) -> RunOutcome:
        """Run a registered algorithm or variant spec by name.

        The outcome carries the *canonical* name, so every spelling of
        the same variant reports identically.
        """
        info = self.info(name)
        schedule, raw = info.runner(instance)
        return RunOutcome(name=info.name, schedule=schedule, raw=raw)


#: The process-global registry all library algorithms register into.
REGISTRY = AlgorithmRegistry()

#: Module-level alias of :meth:`AlgorithmRegistry.register` on the global
#: registry — what algorithm modules import.
register_algorithm = REGISTRY.register
