"""Capability-aware algorithm registry — the engine's naming layer.

Every scheduler in the library registers itself here (via the
:func:`register_algorithm` decorator placed next to its implementation in
:mod:`repro.core`, :mod:`repro.classical`, :mod:`repro.offline`, and
:mod:`repro.profit`) together with *capability metadata*:

* ``profit_aware`` — respects job values (may reject unprofitable jobs);
* ``online`` — consumes jobs in arrival order with no future knowledge;
* ``multiprocessor`` — accepts instances with ``m > 1``;
* ``certificate`` — a hook producing a machine-checkable
  :class:`~repro.analysis.certificates.DualCertificate` from the raw run
  result (present iff the algorithm is certificate-producing).

The metadata is what lets generic layers stay generic: the batch runner
records a certified ratio for exactly the algorithms that can produce
one, sweeps select comparators by capability instead of hard-coding
names, and the CLI can explain what each name is.

:mod:`repro.core.simulator` remains the stable public façade
(``run_algorithm`` / ``available_algorithms``); it is now a thin shim
over the global :data:`REGISTRY` defined here.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import InvalidParameterError
from ..model.job import Instance
from ..model.schedule import Schedule

__all__ = [
    "AlgorithmInfo",
    "AlgorithmRegistry",
    "RunOutcome",
    "REGISTRY",
    "register_algorithm",
]

#: Modules whose import registers the built-in algorithms. Imported
#: lazily on first lookup so that ``import repro.engine`` stays cheap and
#: cycle-free (these modules themselves import this one for the
#: decorator).
_BUILTIN_MODULES = (
    "repro.core.pd",
    "repro.core.cll",
    "repro.core.policies",
    "repro.classical.yds",
    "repro.classical.oa",
    "repro.classical.avr",
    "repro.classical.bkp",
    "repro.classical.qoa",
    "repro.offline.convex",
    "repro.offline.optimal",
    "repro.profit.augmented",
)

Runner = Callable[[Instance], tuple[Schedule, object]]


@dataclass(frozen=True)
class RunOutcome:
    """Normalized result of running any registered algorithm."""

    name: str
    schedule: Schedule
    raw: object

    @property
    def cost(self) -> float:
        return self.schedule.cost

    @property
    def energy(self) -> float:
        return self.schedule.energy


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registered algorithm: its runner plus capability metadata.

    ``runner`` maps an instance to ``(schedule, raw_result)`` — the same
    normalized form the old simulator registry used. ``certificate``
    (when present) maps the *raw* result to a dual certificate; its
    presence defines the ``certificate-producing`` capability.
    """

    name: str
    runner: Runner = field(repr=False)
    profit_aware: bool = False
    online: bool = True
    multiprocessor: bool = False
    certificate: Callable[[Any], Any] | None = field(default=None, repr=False)
    summary: str = ""

    @property
    def produces_certificate(self) -> bool:
        return self.certificate is not None

    def capabilities(self) -> frozenset[str]:
        """The capability tags, as a set of stable strings."""
        tags = set()
        if self.profit_aware:
            tags.add("profit-aware")
        tags.add("online" if self.online else "offline")
        if self.multiprocessor:
            tags.add("multiprocessor")
        if self.produces_certificate:
            tags.add("certificate-producing")
        return frozenset(tags)


class AlgorithmRegistry:
    """String → :class:`AlgorithmInfo` mapping with capability queries."""

    def __init__(self) -> None:
        self._infos: dict[str, AlgorithmInfo] = {}
        self._builtins_loaded = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        *,
        profit_aware: bool = False,
        online: bool = True,
        multiprocessor: bool = False,
        certificate: Callable[[Any], Any] | None = None,
        summary: str = "",
    ) -> Callable[[Runner], Runner]:
        """Decorator registering ``fn`` as algorithm ``name``.

        Re-registering a name overwrites it (idempotent module reloads,
        and tests that want to stub an algorithm, both rely on this).
        """

        def decorator(fn: Runner) -> Runner:
            self._infos[name] = AlgorithmInfo(
                name=name,
                runner=fn,
                profit_aware=profit_aware,
                online=online,
                multiprocessor=multiprocessor,
                certificate=certificate,
                summary=summary,
            )
            return fn

        return decorator

    def _ensure_builtins(self) -> None:
        if not self._builtins_loaded:
            self._builtins_loaded = True
            for module in _BUILTIN_MODULES:
                importlib.import_module(module)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """Registered algorithm names, alphabetically."""
        self._ensure_builtins()
        return tuple(sorted(self._infos))

    def info(self, name: str) -> AlgorithmInfo:
        """Metadata for one algorithm; loud failure for unknown names."""
        self._ensure_builtins()
        try:
            return self._infos[name]
        except KeyError:
            raise InvalidParameterError(
                f"unknown algorithm {name!r}; available: {', '.join(self.names())}"
            ) from None

    def __contains__(self, name: str) -> bool:
        self._ensure_builtins()
        return name in self._infos

    def __iter__(self) -> Iterator[AlgorithmInfo]:
        self._ensure_builtins()
        return iter(self._infos[name] for name in self.names())

    def select(
        self,
        *,
        profit_aware: bool | None = None,
        online: bool | None = None,
        multiprocessor: bool | None = None,
        produces_certificate: bool | None = None,
    ) -> tuple[AlgorithmInfo, ...]:
        """All algorithms matching the given capability constraints.

        ``None`` means "don't care"; e.g. ``select(profit_aware=True,
        multiprocessor=True)`` yields the algorithms eligible for a
        multi-processor profit experiment.
        """

        def match(info: AlgorithmInfo) -> bool:
            return (
                (profit_aware is None or info.profit_aware == profit_aware)
                and (online is None or info.online == online)
                and (multiprocessor is None or info.multiprocessor == multiprocessor)
                and (
                    produces_certificate is None
                    or info.produces_certificate == produces_certificate
                )
            )

        return tuple(info for info in self if match(info))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, name: str, instance: Instance) -> RunOutcome:
        """Run a registered algorithm by name (the simulator's contract)."""
        info = self.info(name)
        schedule, raw = info.runner(instance)
        return RunOutcome(name=name, schedule=schedule, raw=raw)


#: The process-global registry all library algorithms register into.
REGISTRY = AlgorithmRegistry()

#: Module-level alias of :meth:`AlgorithmRegistry.register` on the global
#: registry — what algorithm modules import.
register_algorithm = REGISTRY.register
