"""The experiment engine: registries → streaming runner → declarative sweeps.

Three layers, each usable on its own:

* :mod:`repro.engine.registry` — the capability-aware
  :class:`AlgorithmRegistry` every scheduler registers into
  (profit-aware / online / multiprocessor / certificate-producing); its
  workload-side mirror is :class:`repro.workloads.registry.
  WorkloadRegistry`, which both share one parameterized-spec grammar;
* :mod:`repro.engine.runner` — :class:`BatchRunner`, which *streams*
  (algorithm × instance) grids (``iter_records`` yields in completion
  order; ``run`` collects in request order) serially or on a process
  pool, with a content-addressed on-disk :class:`ResultCache`, per-cell
  measured wall times, and a cost-aware shard scheduler
  (:func:`shard_assignment` round-robin or LPT);
* :mod:`repro.engine.experiment` — :class:`ExperimentSpec`, the
  declarative parameter-grid form (grid, variant, and workload axes)
  that compiles down to batch requests.

The *cache fabric* spans the cache layer: :mod:`repro.engine.cache`
adds an in-memory LRU (:class:`MemoryCache`) and the promoting/
write-through :class:`TieredCache`, :mod:`repro.engine.remote` holds
the network clients (:class:`HttpCache`, :class:`HttpClaimTable`), and
:mod:`repro.io.server` serves any local backend — plus the
work-stealing claim table :meth:`BatchRunner.run_stolen` consumes —
over a small JSON/HTTP wire protocol.

See ``docs/architecture.md`` for the layering contract and the cache
key scheme.
"""

from .cache import (
    CacheBackend,
    DirectoryCache,
    MemoryCache,
    ResultCache,
    SqliteCache,
    TieredCache,
    backend_stats,
    open_cache,
)
from .remote import (
    HttpCache,
    HttpClaimTable,
    HttpConnectionPool,
    RetryPolicy,
)
from .experiment import (
    ExperimentCell,
    ExperimentSpec,
    aggregate_records,
    resolve_family,
    run_experiment,
)
from .registry import (
    REGISTRY,
    AlgorithmInfo,
    AlgorithmRegistry,
    RunOutcome,
    canonical_variant_name,
    parse_variant_name,
    register_algorithm,
)
from .runner import (
    BatchRunner,
    ClaimTable,
    InProcessClaimTable,
    RunnerStats,
    RunRecord,
    RunRequest,
    evaluate_request,
    merge_shards,
    record_from_payload,
    record_to_payload,
    request_key,
    shard_assignment,
    shard_requests,
)

__all__ = [
    "REGISTRY",
    "AlgorithmInfo",
    "AlgorithmRegistry",
    "RunOutcome",
    "register_algorithm",
    "parse_variant_name",
    "canonical_variant_name",
    "CacheBackend",
    "DirectoryCache",
    "MemoryCache",
    "ResultCache",
    "SqliteCache",
    "TieredCache",
    "HttpCache",
    "HttpClaimTable",
    "HttpConnectionPool",
    "RetryPolicy",
    "backend_stats",
    "open_cache",
    "BatchRunner",
    "ClaimTable",
    "InProcessClaimTable",
    "RunnerStats",
    "RunRecord",
    "RunRequest",
    "request_key",
    "evaluate_request",
    "shard_assignment",
    "shard_requests",
    "merge_shards",
    "record_to_payload",
    "record_from_payload",
    "ExperimentSpec",
    "ExperimentCell",
    "run_experiment",
    "aggregate_records",
    "resolve_family",
]
