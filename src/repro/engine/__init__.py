"""The experiment engine: registry → batch runner → declarative sweeps.

Three layers, each usable on its own:

* :mod:`repro.engine.registry` — the capability-aware
  :class:`AlgorithmRegistry` every scheduler registers into
  (profit-aware / online / multiprocessor / certificate-producing);
* :mod:`repro.engine.runner` — :class:`BatchRunner`, which evaluates
  (algorithm × instance) grids serially or on a process pool with a
  content-addressed on-disk :class:`ResultCache`;
* :mod:`repro.engine.experiment` — :class:`ExperimentSpec`, the
  declarative parameter-grid form that compiles down to batch requests.

See ``docs/architecture.md`` for the layering contract and the cache
key scheme.
"""

from .cache import ResultCache
from .experiment import (
    ExperimentCell,
    ExperimentSpec,
    resolve_family,
    run_experiment,
)
from .registry import (
    REGISTRY,
    AlgorithmInfo,
    AlgorithmRegistry,
    RunOutcome,
    register_algorithm,
)
from .runner import (
    BatchRunner,
    RunnerStats,
    RunRecord,
    RunRequest,
    evaluate_request,
    request_key,
)

__all__ = [
    "REGISTRY",
    "AlgorithmInfo",
    "AlgorithmRegistry",
    "RunOutcome",
    "register_algorithm",
    "ResultCache",
    "BatchRunner",
    "RunnerStats",
    "RunRecord",
    "RunRequest",
    "request_key",
    "evaluate_request",
    "ExperimentSpec",
    "ExperimentCell",
    "run_experiment",
    "resolve_family",
]
