"""The experiment engine: registries → streaming runner → declarative sweeps.

Three layers, each usable on its own:

* :mod:`repro.engine.registry` — the capability-aware
  :class:`AlgorithmRegistry` every scheduler registers into
  (profit-aware / online / multiprocessor / certificate-producing); its
  workload-side mirror is :class:`repro.workloads.registry.
  WorkloadRegistry`, which both share one parameterized-spec grammar;
* :mod:`repro.engine.runner` — :class:`BatchRunner`, which *streams*
  (algorithm × instance) grids (``iter_records`` yields in completion
  order; ``run`` collects in request order) serially or on a process
  pool, with a content-addressed on-disk :class:`ResultCache`, per-cell
  measured wall times, and a cost-aware shard scheduler
  (:func:`shard_assignment` round-robin or LPT);
* :mod:`repro.engine.experiment` — :class:`ExperimentSpec`, the
  declarative parameter-grid form (grid, variant, and workload axes)
  that compiles down to batch requests.

See ``docs/architecture.md`` for the layering contract and the cache
key scheme.
"""

from .cache import (
    CacheBackend,
    DirectoryCache,
    ResultCache,
    SqliteCache,
    open_cache,
)
from .experiment import (
    ExperimentCell,
    ExperimentSpec,
    aggregate_records,
    resolve_family,
    run_experiment,
)
from .registry import (
    REGISTRY,
    AlgorithmInfo,
    AlgorithmRegistry,
    RunOutcome,
    canonical_variant_name,
    parse_variant_name,
    register_algorithm,
)
from .runner import (
    BatchRunner,
    RunnerStats,
    RunRecord,
    RunRequest,
    evaluate_request,
    merge_shards,
    record_from_payload,
    record_to_payload,
    request_key,
    shard_assignment,
    shard_requests,
)

__all__ = [
    "REGISTRY",
    "AlgorithmInfo",
    "AlgorithmRegistry",
    "RunOutcome",
    "register_algorithm",
    "parse_variant_name",
    "canonical_variant_name",
    "CacheBackend",
    "DirectoryCache",
    "ResultCache",
    "SqliteCache",
    "open_cache",
    "BatchRunner",
    "RunnerStats",
    "RunRecord",
    "RunRequest",
    "request_key",
    "evaluate_request",
    "shard_assignment",
    "shard_requests",
    "merge_shards",
    "record_to_payload",
    "record_from_payload",
    "ExperimentSpec",
    "ExperimentCell",
    "run_experiment",
    "aggregate_records",
    "resolve_family",
]
