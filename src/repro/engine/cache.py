"""Content-addressed on-disk cache for batch-runner results.

Each cache entry is one JSON file named ``<sha256>.json`` under the cache
directory, where the hash is the :func:`repro.io.serialize.stable_hash`
of the *request* (algorithm name + the instance's serialized form + the
record schema version). Re-running a sweep with one changed cell
therefore recomputes exactly that cell: every other request hashes to an
existing file.

The cache is deliberately dumb — no index, no eviction, no locking
beyond atomic-rename writes. Entries are immutable once written (content
addressing makes overwrites idempotent), so concurrent readers and
writers cannot corrupt each other, and ``rm -r`` of the directory is
always a safe reset.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of content-addressed JSON payloads."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached payload for ``key``, or ``None`` on a miss.

        A corrupt file (interrupted write from a pre-atomic-rename tool,
        disk trouble) is treated as a miss, not an error — the entry will
        be recomputed and rewritten.
        """
        path = self._path(key)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            return None

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomic write-then-rename)."""
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
