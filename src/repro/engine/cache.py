"""Pluggable content-addressed caches for batch-runner results.

Every backend stores immutable JSON payloads under string keys (the
:func:`repro.io.serialize.stable_hash` of the *request*: algorithm name
+ parsed variant parameters + the instance's serialized form + the
record schema version). Re-running a sweep with one changed cell
therefore recomputes exactly that cell: every other request hashes to an
existing entry.

Two backends ship with the library, behind the common
:class:`CacheBackend` protocol:

* :class:`DirectoryCache` — one ``<sha256>.json`` file per entry under a
  directory. No index, no eviction, no locking beyond atomic-rename
  writes; ``rm -r`` of the directory is always a safe reset. This is
  the historical backend (``ResultCache`` remains its alias).
* :class:`SqliteCache` — a single-file SQLite database in WAL mode,
  friendlier to filesystems that hate directories with tens of
  thousands of small files, and safe under concurrent writers (content
  addressing makes every write idempotent, so writers can only race to
  store the same bytes).

Backends are interchangeable by construction: the parity tests assert
bit-identical records whichever one a :class:`~repro.engine.runner.
BatchRunner` is given.
"""

from __future__ import annotations

import json
import math
import os
import sqlite3
import tempfile
import time
from pathlib import Path
from typing import Any, Iterator, Protocol, runtime_checkable

from ..errors import InvalidParameterError

__all__ = [
    "CacheBackend",
    "DirectoryCache",
    "ResultCache",
    "SqliteCache",
    "open_cache",
]

#: Prefix of in-flight temp files a :class:`DirectoryCache` writes before
#: the atomic rename. Key-addressed entries are hex digests, so nothing
#: legitimate ever starts with this.
_TMP_PREFIX = ".tmp-"

#: Minimum age (seconds) before an on-disk temp file is considered
#: orphaned. Live writers hold their temp file for milliseconds; a
#: generous threshold keeps the init-time sweep from racing them.
_TMP_STALE_SECONDS = 3600.0


@runtime_checkable
class CacheBackend(Protocol):
    """What the batch runner needs from a result cache.

    Entries are immutable: ``put`` under an existing key must be a no-op
    or an idempotent overwrite with equal content (keys are content
    addresses, so both are indistinguishable). ``get`` of a missing or
    unreadable entry returns ``None`` — a miss, never an error.

    ``close`` releases whatever the backend holds open (connections,
    sidecar files); it must be idempotent, and a closed backend may
    lazily reopen on the next use. Every backend is also a context
    manager (``with open_cache(...) as cache: ...``) that closes on
    exit — long-lived callers like the CLI use that instead of leaving
    cleanup to the garbage collector.
    """

    def get(self, key: str) -> dict[str, Any] | None: ...

    def put(self, key: str, payload: dict[str, Any]) -> None: ...

    def keys(self) -> Iterator[str]: ...

    def close(self) -> None: ...

    def __contains__(self, key: str) -> bool: ...

    def __len__(self) -> int: ...


class DirectoryCache:
    """A directory of content-addressed JSON payloads (one file each)."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove temp files orphaned by a killed writer.

        An interrupted ``put`` (process killed between ``mkstemp`` and
        ``os.replace``) leaks a ``.tmp-*`` file that nothing would ever
        clean up. Only files older than :data:`_TMP_STALE_SECONDS` are
        swept — a live writer holds its temp file for milliseconds, so
        the age gate keeps concurrent cache users (shards sharing one
        directory) from deleting each other's in-flight writes; should
        that ever happen anyway, ``put`` retries the write.
        """
        cutoff = time.time() - _TMP_STALE_SECONDS
        for stale in self.directory.glob(f"{_TMP_PREFIX}*"):
            try:
                if stale.stat().st_mtime < cutoff:
                    stale.unlink()
            except OSError:
                pass

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached payload for ``key``, or ``None`` on a miss.

        A corrupt file (interrupted write from a pre-atomic-rename tool,
        disk trouble) is treated as a miss, not an error — the entry will
        be recomputed and rewritten.
        """
        path = self._path(key)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            return None

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomic write-then-rename).

        If the temp file vanishes before the rename (another process's
        over-eager cleanup), the write is retried — content addressing
        makes the whole operation idempotent, so retrying is always
        correct.
        """
        path = self._path(key)
        for attempt in range(3):
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=_TMP_PREFIX, suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
                return
            except FileNotFoundError:
                if attempt == 2:
                    raise
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def keys(self) -> Iterator[str]:
        """The stored keys (entry files only, never in-flight temp files).

        ``Path.glob`` matches dotfiles, so ``*.json`` alone would also
        yield ``.tmp-*.json`` files from writers we are racing with —
        those are not entries yet and must not be counted or listed.
        """
        for path in self.directory.glob("*.json"):
            if not path.name.startswith(_TMP_PREFIX):
                yield path.stem

    def close(self) -> None:
        """No-op: every operation opens and closes its own file."""

    def __enter__(self) -> "DirectoryCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())


#: Backward-compatible name for the historical JSON-directory backend.
ResultCache = DirectoryCache


class SqliteCache:
    """A single-file SQLite backend (WAL mode, concurrent-writer safe).

    One table, ``entries(key TEXT PRIMARY KEY, payload TEXT)``. Writes
    use ``INSERT OR REPLACE`` inside an implicit transaction; WAL mode
    plus a generous busy timeout lets several runner processes share the
    file, and content addressing means the worst a race can do is store
    the same bytes twice.
    """

    def __init__(self, path: str | Path, *, timeout: float = 30.0) -> None:
        self.path = Path(path)
        if self.path.parent:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._timeout = timeout
        self._conn: sqlite3.Connection | None = None
        self._pid = -1
        self._connect()  # fail loudly now if the path is unusable

    def _connect(self) -> sqlite3.Connection:
        # Reopen after fork: SQLite connections must not cross processes
        # (worker pools fork the parent mid-life).
        if self._conn is None or self._pid != os.getpid():
            conn = sqlite3.connect(self.path, timeout=self._timeout)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "key TEXT PRIMARY KEY, payload TEXT NOT NULL, "
                "wall_time REAL)"
            )
            try:
                # Migrate pre-timing databases in place; the duplicate-
                # column error on current ones is the cheap existence
                # probe.
                conn.execute("ALTER TABLE entries ADD COLUMN wall_time REAL")
            except sqlite3.OperationalError:
                pass
            conn.commit()
            self._conn = conn
            self._pid = os.getpid()
        return self._conn

    def get(self, key: str) -> dict[str, Any] | None:
        row = self._connect().execute(
            "SELECT payload FROM entries WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError:
            return None  # corrupt entry reads as a miss, like the dir backend

    def put(self, key: str, payload: dict[str, Any]) -> None:
        # The measured wall time is denormalized into its own column so
        # the LPT cost model can read one float per cell instead of
        # parsing full payloads (schedules dominate the payload bytes).
        timing = payload.get("wall_time")
        if not isinstance(timing, (int, float)) or not math.isfinite(timing):
            timing = None
        conn = self._connect()
        with conn:
            conn.execute(
                "INSERT OR REPLACE INTO entries (key, payload, wall_time) "
                "VALUES (?, ?, ?)",
                (key, json.dumps(payload), timing),
            )

    def get_timing(self, key: str) -> float | None:
        """The stored ``wall_time`` of one entry, payload left unparsed.

        The fast path for :meth:`~repro.engine.runner.BatchRunner.
        estimate_costs` over large caches. Entries written by a
        pre-timing build (``NULL`` column) fall back to a full payload
        read; a miss (or an entry with no usable timing) is ``None``.
        """
        row = self._connect().execute(
            "SELECT wall_time FROM entries WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        if row[0] is not None:
            return float(row[0])
        payload = self.get(key)
        timing = payload.get("wall_time") if payload is not None else None
        if isinstance(timing, (int, float)) and math.isfinite(timing):
            return float(timing)
        return None

    def keys(self) -> Iterator[str]:
        for (key,) in self._connect().execute(
            "SELECT key FROM entries ORDER BY key"
        ):
            yield key

    def __contains__(self, key: str) -> bool:
        return (
            self._connect()
            .execute("SELECT 1 FROM entries WHERE key = ?", (key,))
            .fetchone()
            is not None
        )

    def __len__(self) -> int:
        return int(
            self._connect().execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        )

    def close(self) -> None:
        """Checkpoint the WAL and close the connection.

        The explicit ``wal_checkpoint(TRUNCATE)`` folds the ``-wal`` /
        ``-shm`` sidecar files back into the database before closing, so
        a finished run leaves one shippable file behind instead of
        relying on the garbage collector to get around to it. Safe to
        call twice; the connection reopens lazily on the next use.
        """
        if self._conn is not None and self._pid == os.getpid():
            try:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:
                pass  # best effort: closing still detaches the sidecars
            self._conn.close()
        self._conn = None

    def __enter__(self) -> "SqliteCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: Constructors by CLI/backend name; the single source of truth for
#: ``--cache-backend`` choices.
BACKENDS = {
    "dir": DirectoryCache,
    "sqlite": SqliteCache,
}


def open_cache(path: str | Path, backend: str = "dir") -> CacheBackend:
    """Construct a cache backend by name (``dir`` or ``sqlite``)."""
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise InvalidParameterError(
            f"unknown cache backend {backend!r}; "
            f"available: {', '.join(sorted(BACKENDS))}"
        ) from None
    return factory(path)
