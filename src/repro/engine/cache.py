"""Pluggable content-addressed caches for batch-runner results.

Every backend stores immutable JSON payloads under string keys (the
:func:`repro.io.serialize.stable_hash` of the *request*: algorithm name
+ parsed variant parameters + the instance's serialized form + the
record schema version). Re-running a sweep with one changed cell
therefore recomputes exactly that cell: every other request hashes to an
existing entry.

Four backends ship with the library, behind the common
:class:`CacheBackend` protocol:

* :class:`DirectoryCache` — one ``<sha256>.json`` file per entry under a
  directory. No index, no eviction, no locking beyond atomic-rename
  writes; ``rm -r`` of the directory is always a safe reset. This is
  the historical backend (``ResultCache`` remains its alias). A compact
  per-key ``.timing`` sidecar makes cost estimation a metadata read.
* :class:`SqliteCache` — a single-file SQLite database in WAL mode,
  friendlier to filesystems that hate directories with tens of
  thousands of small files, and safe under concurrent writers (content
  addressing makes every write idempotent, so writers can only race to
  store the same bytes; busy-lock collisions retry with backoff).
* :class:`MemoryCache` — a bounded in-process LRU, the hot tier of a
  :class:`TieredCache` (and a zero-setup backend for tests and the
  cache server).
* :class:`TieredCache` — a composite that probes fast tiers first,
  writes through to every tier, and promotes hits upward, so a hot key
  behind a remote :class:`~repro.engine.remote.HttpCache` tier is
  fetched over the network at most once.

Backends are interchangeable by construction: the parity tests assert
bit-identical records whichever one a :class:`~repro.engine.runner.
BatchRunner` is given.
"""

from __future__ import annotations

import json
import math
import os
import sqlite3
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterator, Mapping, Protocol, Sequence, runtime_checkable

from ..errors import InvalidParameterError

__all__ = [
    "CacheBackend",
    "DirectoryCache",
    "MemoryCache",
    "ResultCache",
    "SqliteCache",
    "TieredCache",
    "backend_stats",
    "open_cache",
]

#: Prefix of in-flight temp files a :class:`DirectoryCache` writes before
#: the atomic rename. Key-addressed entries are hex digests, so nothing
#: legitimate ever starts with this.
_TMP_PREFIX = ".tmp-"

#: Minimum age (seconds) before an on-disk temp file is considered
#: orphaned. Live writers hold their temp file for milliseconds; a
#: generous threshold keeps the init-time sweep from racing them.
_TMP_STALE_SECONDS = 3600.0

#: Suffix of a :class:`DirectoryCache` entry's timing sidecar — a file
#: holding nothing but ``repr(wall_time)``, so cost estimation over a
#: large cache reads a few bytes per key instead of parsing payloads
#: whose serialized schedules dominate the bytes.
_TIMING_SUFFIX = ".timing"


def _finite_timing(payload: Mapping[str, Any] | None) -> float | None:
    """The payload's measured ``wall_time``, or ``None`` if unusable."""
    if payload is None:
        return None
    timing = payload.get("wall_time")
    if isinstance(timing, (int, float)) and math.isfinite(timing):
        return float(timing)
    return None


@runtime_checkable
class CacheBackend(Protocol):
    """What the batch runner needs from a result cache.

    Entries are immutable: ``put`` under an existing key must be a no-op
    or an idempotent overwrite with equal content (keys are content
    addresses, so both are indistinguishable). ``get`` of a missing or
    unreadable entry returns ``None`` — a miss, never an error.

    ``close`` releases whatever the backend holds open (connections,
    sidecar files); it must be idempotent, and a closed backend may
    lazily reopen on the next use. Every backend is also a context
    manager (``with open_cache(...) as cache: ...``) that closes on
    exit — long-lived callers like the CLI use that instead of leaving
    cleanup to the garbage collector.
    """

    def get(self, key: str) -> dict[str, Any] | None: ...

    def put(self, key: str, payload: dict[str, Any]) -> None: ...

    def keys(self) -> Iterator[str]: ...

    def close(self) -> None: ...

    def __contains__(self, key: str) -> bool: ...

    def __len__(self) -> int: ...


class DirectoryCache:
    """A directory of content-addressed JSON payloads (one file each)."""

    #: Concurrent callers are safe: every write is an atomic rename of
    #: immutable content, every read a single-file parse — the striped
    #: :class:`~repro.io.server.CacheServer` may serve this backend
    #: from parallel handler threads.
    thread_safe = True

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove temp files orphaned by a killed writer.

        An interrupted ``put`` (process killed between ``mkstemp`` and
        ``os.replace``) leaks a ``.tmp-*`` file that nothing would ever
        clean up. Only files older than :data:`_TMP_STALE_SECONDS` are
        swept — a live writer holds its temp file for milliseconds, so
        the age gate keeps concurrent cache users (shards sharing one
        directory) from deleting each other's in-flight writes; should
        that ever happen anyway, ``put`` retries the write.
        """
        cutoff = time.time() - _TMP_STALE_SECONDS
        for stale in self.directory.glob(f"{_TMP_PREFIX}*"):
            try:
                if stale.stat().st_mtime < cutoff:
                    stale.unlink()
            except OSError:
                pass

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _timing_path(self, key: str) -> Path:
        return self.directory / f"{key}{_TIMING_SUFFIX}"

    def _atomic_write(self, path: Path, text: str) -> None:
        """Write-then-rename, retried if a racing cleaner steals the temp
        file — content addressing makes the whole operation idempotent,
        so retrying is always correct."""
        for attempt in range(3):
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=_TMP_PREFIX, suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(text)
                os.replace(tmp, path)
                return
            except FileNotFoundError:
                if attempt == 2:
                    raise
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached payload for ``key``, or ``None`` on a miss.

        A corrupt file (interrupted write from a pre-atomic-rename tool,
        disk trouble) is treated as a miss, not an error — the entry will
        be recomputed and rewritten.
        """
        path = self._path(key)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            return None

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomic write-then-rename).

        A payload carrying a finite measured ``wall_time`` also writes
        its ``.timing`` sidecar, so the LPT/steal cost model reads one
        small file per key instead of parsing the full payload.
        """
        self._atomic_write(self._path(key), json.dumps(payload))
        timing = _finite_timing(payload)
        if timing is not None:
            self._atomic_write(self._timing_path(key), repr(timing))

    def get_timing(self, key: str) -> float | None:
        """The stored ``wall_time`` of one entry, payload left unparsed.

        The fast path for :meth:`~repro.engine.runner.BatchRunner.
        estimate_costs`: a few bytes from the ``.timing`` sidecar.
        Entries written by a pre-sidecar build fall back to a full
        payload read and lazily backfill their sidecar, so a warmed old
        cache converges to O(keys) metadata reads. A miss (or an entry
        with no usable timing) is ``None``.
        """
        try:
            return float(self._timing_path(key).read_text())
        except FileNotFoundError:
            pass
        except (ValueError, OSError):
            pass  # unreadable sidecar: recover it from the payload below
        timing = _finite_timing(self.get(key))
        if timing is not None:
            try:
                self._atomic_write(self._timing_path(key), repr(timing))
            except OSError:
                pass  # backfill is an optimization, never a failure
        return timing

    def stats(self) -> dict[str, Any]:
        """Backend, entry count, payload bytes, and timing-index coverage.

        ``timed_entries`` counts sidecar files only — pre-sidecar
        entries whose payloads do carry a timing are excluded until a
        ``get_timing`` backfills them; counting them would require the
        full payload parse this index exists to avoid.
        """
        entries = total_bytes = timed = 0
        for path in self.directory.glob("*.json"):
            if path.name.startswith(_TMP_PREFIX):
                continue
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue  # deleted under us: not an entry anymore
            entries += 1
            if self._timing_path(path.stem).exists():
                timed += 1
        return {
            "backend": "dir",
            "location": str(self.directory),
            "entries": entries,
            "total_bytes": total_bytes,
            "timed_entries": timed,
        }

    def gc(self, older_than: float) -> int:
        """Prune entries not modified in ``older_than`` seconds.

        Removes each stale entry with its timing sidecar, stale
        ``.tmp-*`` leftovers past the cutoff, and orphaned sidecars
        whose entry is already gone. Returns the number of *entries*
        pruned.
        """
        cutoff = time.time() - float(older_than)
        removed = 0
        for path in list(self.directory.iterdir()):
            name = path.name
            try:
                stale = path.stat().st_mtime < cutoff
            except OSError:
                continue
            if name.startswith(_TMP_PREFIX):
                if stale:
                    path.unlink(missing_ok=True)
                continue
            if name.endswith(".json") and stale:
                path.unlink(missing_ok=True)
                self._timing_path(path.stem).unlink(missing_ok=True)
                removed += 1
            elif name.endswith(_TIMING_SUFFIX):
                if not self._path(name[: -len(_TIMING_SUFFIX)]).exists():
                    path.unlink(missing_ok=True)
        return removed

    def keys(self) -> Iterator[str]:
        """The stored keys (entry files only, never in-flight temp files).

        ``Path.glob`` matches dotfiles, so ``*.json`` alone would also
        yield ``.tmp-*.json`` files from writers we are racing with —
        those are not entries yet and must not be counted or listed.
        """
        for path in self.directory.glob("*.json"):
            if not path.name.startswith(_TMP_PREFIX):
                yield path.stem

    def close(self) -> None:
        """No-op: every operation opens and closes its own file."""

    def __enter__(self) -> "DirectoryCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())


#: Backward-compatible name for the historical JSON-directory backend.
ResultCache = DirectoryCache


class SqliteCache:
    """A single-file SQLite backend (WAL mode, concurrent-writer safe).

    One table, ``entries(key TEXT PRIMARY KEY, payload TEXT, wall_time
    REAL, created_at REAL)``. Writes use ``INSERT OR REPLACE`` inside an
    implicit transaction; WAL mode plus a generous busy timeout lets
    several runner processes share the file, and content addressing
    means the worst a race can do is store the same bytes twice. A write
    that still loses the lock race (``SQLITE_BUSY`` surviving the busy
    timeout — seen with many processes hammering one file) is retried
    with bounded exponential backoff instead of surfacing
    ``sqlite3.OperationalError`` mid-sweep.

    Connections are per-process (reopened after fork) but *not*
    per-thread: ``check_same_thread=False`` so a serving layer like
    :class:`repro.io.server.CacheServer` — which serializes every
    backend call behind one lock — can run handler threads. Callers
    sharing one instance across threads must serialize access the same
    way.
    """

    #: One shared connection, no internal mutex: a serving layer must
    #: keep serializing calls (the striped server collapses to a single
    #: stripe over this backend).
    thread_safe = False

    #: Bounded backoff for writes that lose the WAL lock race: attempt
    #: ``i`` sleeps ``_BUSY_BASE_DELAY * 2**i`` seconds before retrying,
    #: ~0.6 s in total before the error is surfaced for real.
    _BUSY_ATTEMPTS = 6
    _BUSY_BASE_DELAY = 0.02

    def __init__(self, path: str | Path, *, timeout: float = 30.0) -> None:
        self.path = Path(path)
        if self.path.parent:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._timeout = timeout
        self._conn: sqlite3.Connection | None = None
        self._pid = -1
        self._connect()  # fail loudly now if the path is unusable

    def _connect(self) -> sqlite3.Connection:
        # Reopen after fork: SQLite connections must not cross processes
        # (worker pools fork the parent mid-life).
        if self._conn is None or self._pid != os.getpid():
            conn = sqlite3.connect(
                self.path, timeout=self._timeout, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "key TEXT PRIMARY KEY, payload TEXT NOT NULL, "
                "wall_time REAL, created_at REAL)"
            )
            for column in ("wall_time REAL", "created_at REAL"):
                try:
                    # Migrate older databases in place; the duplicate-
                    # column error on current ones is the cheap
                    # existence probe.
                    conn.execute(f"ALTER TABLE entries ADD COLUMN {column}")
                except sqlite3.OperationalError:
                    pass
            conn.commit()
            self._conn = conn
            self._pid = os.getpid()
        return self._conn

    @staticmethod
    def _is_busy(exc: sqlite3.OperationalError) -> bool:
        text = str(exc).lower()
        return "locked" in text or "busy" in text

    def _write_with_retry(self, operation):
        """Run a write closure, retrying lock-contention failures.

        Content addressing makes every write idempotent, so a retry can
        only re-store the same bytes; anything that is not a busy/locked
        condition re-raises immediately.
        """
        for attempt in range(self._BUSY_ATTEMPTS):
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                if not self._is_busy(exc) or attempt == self._BUSY_ATTEMPTS - 1:
                    raise
                time.sleep(self._BUSY_BASE_DELAY * (2 ** attempt))

    def get(self, key: str) -> dict[str, Any] | None:
        row = self._connect().execute(
            "SELECT payload FROM entries WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError:
            return None  # corrupt entry reads as a miss, like the dir backend

    def put(self, key: str, payload: dict[str, Any]) -> None:
        # The measured wall time is denormalized into its own column so
        # the LPT cost model can read one float per cell instead of
        # parsing full payloads (schedules dominate the payload bytes).
        timing = _finite_timing(payload)
        text = json.dumps(payload)
        conn = self._connect()

        def write() -> None:
            with conn:
                conn.execute(
                    "INSERT OR REPLACE INTO entries "
                    "(key, payload, wall_time, created_at) "
                    "VALUES (?, ?, ?, ?)",
                    (key, text, timing, time.time()),
                )

        self._write_with_retry(write)

    def get_timing(self, key: str) -> float | None:
        """The stored ``wall_time`` of one entry, payload left unparsed.

        The fast path for :meth:`~repro.engine.runner.BatchRunner.
        estimate_costs` over large caches. Entries written by a
        pre-timing build (``NULL`` column) fall back to a full payload
        read; a miss (or an entry with no usable timing) is ``None``.
        """
        row = self._connect().execute(
            "SELECT wall_time FROM entries WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        if row[0] is not None:
            return float(row[0])
        return _finite_timing(self.get(key))

    def stats(self) -> dict[str, Any]:
        """Backend, entry count, payload bytes, and timing coverage."""
        row = self._connect().execute(
            "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0), "
            "COUNT(wall_time) FROM entries"
        ).fetchone()
        return {
            "backend": "sqlite",
            "location": str(self.path),
            "entries": int(row[0]),
            "total_bytes": int(row[1]),
            "timed_entries": int(row[2]),
        }

    def gc(self, older_than: float) -> int:
        """Prune entries stored more than ``older_than`` seconds ago.

        Entries written by a pre-timestamp build (``created_at`` NULL)
        have unknowable age and are treated as old — ``gc`` is an
        explicit maintenance request, and keeping undatable entries
        forever would defeat it. Returns the number pruned.
        """
        cutoff = time.time() - float(older_than)
        conn = self._connect()

        def prune() -> int:
            with conn:
                cursor = conn.execute(
                    "DELETE FROM entries "
                    "WHERE created_at IS NULL OR created_at < ?",
                    (cutoff,),
                )
                return int(cursor.rowcount)

        return self._write_with_retry(prune)

    def keys(self) -> Iterator[str]:
        for (key,) in self._connect().execute(
            "SELECT key FROM entries ORDER BY key"
        ):
            yield key

    def __contains__(self, key: str) -> bool:
        return (
            self._connect()
            .execute("SELECT 1 FROM entries WHERE key = ?", (key,))
            .fetchone()
            is not None
        )

    def __len__(self) -> int:
        return int(
            self._connect().execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        )

    def close(self) -> None:
        """Checkpoint the WAL and close the connection.

        The explicit ``wal_checkpoint(TRUNCATE)`` folds the ``-wal`` /
        ``-shm`` sidecar files back into the database before closing, so
        a finished run leaves one shippable file behind instead of
        relying on the garbage collector to get around to it. Safe to
        call twice; the connection reopens lazily on the next use.
        """
        if self._conn is not None and self._pid == os.getpid():
            try:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:
                pass  # best effort: closing still detaches the sidecars
            self._conn.close()
        self._conn = None

    def __enter__(self) -> "SqliteCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MemoryCache:
    """A bounded in-process LRU backend.

    The hot tier of a :class:`TieredCache` (and a zero-setup backend for
    tests and the cache server). Payloads are stored in their canonical
    JSON text form and re-parsed on ``get`` — the same round trip every
    other backend performs — so a caller mutating a returned dict can
    never corrupt the stored entry, and parity with the on-disk backends
    holds bit for bit.

    Eviction is LRU over *entry count* (``max_entries``; ``None`` means
    unbounded — the right setting when the memory cache IS the store,
    as under ``cache-serve --backend memory``, where a silent LRU cap
    would evict a fleet's results mid-sweep): a ``get`` or ``put``
    refreshes recency, and the stalest entry is dropped when the bound
    is exceeded. Entries also remember their insertion time, so
    ``gc(older_than)`` works like the durable backends'.

    A small internal mutex makes every operation atomic under
    concurrent callers — LRU bookkeeping (``move_to_end`` racing a
    ``popitem``) is the kind of compound mutation the GIL alone does
    not protect — so the striped :class:`~repro.io.server.CacheServer`
    can serve this backend from parallel handler threads.
    """

    #: See the class docstring: all compound mutations are mutex-atomic.
    thread_safe = True

    def __init__(self, max_entries: int | None = 1024) -> None:
        if max_entries is not None and (
            not isinstance(max_entries, int) or max_entries < 1
        ):
            raise InvalidParameterError(
                f"max_entries must be an int >= 1 or None, got {max_entries!r}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        # key -> (created_at, wall_time | None, payload text)
        self._entries: OrderedDict[str, tuple[float, float | None, str]] = (
            OrderedDict()
        )

    def get(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
        return json.loads(entry[2])

    def put(self, key: str, payload: dict[str, Any]) -> None:
        created = time.time()
        timing = _finite_timing(payload)
        text = json.dumps(payload)
        with self._lock:
            self._entries[key] = (created, timing, text)
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)

    def get_timing(self, key: str) -> float | None:
        """The entry's ``wall_time`` without a payload parse (no recency
        bump: cost estimation is a scan, not a use)."""
        with self._lock:
            entry = self._entries.get(key)
        return entry[1] if entry is not None else None

    def keys(self) -> Iterator[str]:
        with self._lock:
            snapshot = list(self._entries)
        yield from snapshot

    def stats(self) -> dict[str, Any]:
        bound = "unbounded" if self.max_entries is None else self.max_entries
        with self._lock:
            entries = list(self._entries.values())
        return {
            "backend": "memory",
            "location": f"lru({bound})",
            "entries": len(entries),
            "total_bytes": sum(len(e[2]) for e in entries),
            "timed_entries": sum(1 for e in entries if e[1] is not None),
        }

    def gc(self, older_than: float) -> int:
        cutoff = time.time() - float(older_than)
        with self._lock:
            stale = [k for k, e in self._entries.items() if e[0] < cutoff]
            for key in stale:
                del self._entries[key]
        return len(stale)

    def close(self) -> None:
        """No-op: entries live and die with the object."""

    def __enter__(self) -> "MemoryCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class TieredCache:
    """A composite backend: fast tiers shield slow ones.

    ``tiers`` is ordered fastest-first (the canonical stack is
    ``[MemoryCache(), DirectoryCache(...), HttpCache(...)]``). Reads
    probe tier by tier and **promote** a hit into every faster tier, so
    a hot key behind the network tier is fetched remotely at most once
    per process. Writes go **through** to every tier, so the remote
    stays authoritative and a restarted worker finds its local tiers
    warm. ``keys``/``len``/``contains`` answer from the *last* tier —
    the authoritative one; faster tiers are partial replicas by
    construction.
    """

    def __init__(self, tiers: Sequence[CacheBackend]) -> None:
        tiers = list(tiers)
        if not tiers:
            raise InvalidParameterError("TieredCache needs at least one tier")
        for tier in tiers:
            if not (hasattr(tier, "get") and hasattr(tier, "put")):
                raise InvalidParameterError(
                    f"every tier must be a CacheBackend, got {tier!r}"
                )
        self.tiers = tiers

    @property
    def thread_safe(self) -> bool:
        """A stack is only as concurrent as its weakest tier."""
        return all(
            bool(getattr(tier, "thread_safe", False)) for tier in self.tiers
        )

    def get(self, key: str) -> dict[str, Any] | None:
        for depth, tier in enumerate(self.tiers):
            payload = tier.get(key)
            if payload is not None:
                for upper in self.tiers[:depth]:
                    upper.put(key, payload)
                return payload
        return None

    def get_many(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        """Batched probe: each tier sees only the keys the faster tiers
        missed, and every deep hit is promoted upward."""
        found: dict[str, dict[str, Any]] = {}
        level: dict[str, int] = {}
        missing = list(keys)
        for depth, tier in enumerate(self.tiers):
            if not missing:
                break
            fetch_many = getattr(tier, "get_many", None)
            if fetch_many is not None:
                hits = fetch_many(missing)
            else:
                hits = {}
                for key in missing:
                    payload = tier.get(key)
                    if payload is not None:
                        hits[key] = payload
            for key, payload in hits.items():
                found[key] = payload
                level[key] = depth
            missing = [key for key in missing if key not in found]
        for key, depth in level.items():
            for upper in self.tiers[:depth]:
                upper.put(key, found[key])
        return found

    def put(self, key: str, payload: dict[str, Any]) -> None:
        for tier in self.tiers:
            tier.put(key, payload)

    def get_timing(self, key: str) -> float | None:
        for tier in self.tiers:
            probe = getattr(tier, "get_timing", None)
            if probe is not None:
                timing = probe(key)
                if timing is not None:
                    return timing
        return _finite_timing(self.get(key))

    def get_timings(self, keys: Sequence[str]) -> dict[str, float]:
        """Bulk timings without payload parses; keys no tier can time
        are simply absent (the cost model estimates them at its
        default)."""
        out: dict[str, float] = {}
        missing = list(keys)
        for tier in self.tiers:
            if not missing:
                break
            bulk = getattr(tier, "get_timings", None)
            probe = getattr(tier, "get_timing", None)
            if bulk is not None:
                out.update(bulk(missing))
            elif probe is not None:
                for key in missing:
                    timing = probe(key)
                    if timing is not None:
                        out[key] = timing
            missing = [key for key in missing if key not in out]
        return out

    def keys(self) -> Iterator[str]:
        return self.tiers[-1].keys()

    def stats(self) -> dict[str, Any]:
        """The authoritative tier's numbers, plus one entry per tier.

        Each tier's stats are computed exactly once — a directory walk
        or a strict HTTP round trip is not free, and repeating it would
        turn one server hiccup into a spurious failure.
        """
        per_tier = [backend_stats(tier) for tier in self.tiers]
        authoritative = per_tier[-1]
        return {
            "backend": "tiered",
            "location": " -> ".join(
                stats.get("backend", "?") for stats in per_tier
            ),
            "entries": authoritative.get("entries"),
            "total_bytes": authoritative.get("total_bytes"),
            "timed_entries": authoritative.get("timed_entries"),
            "tiers": per_tier,
        }

    def gc(self, older_than: float) -> int:
        """GC every tier that supports it; reports the authoritative
        (last) tier's count."""
        removed = 0
        for depth, tier in enumerate(self.tiers):
            collect = getattr(tier, "gc", None)
            if collect is not None:
                count = collect(older_than)
                if depth == len(self.tiers) - 1:
                    removed = count
        return removed

    def close(self) -> None:
        for tier in self.tiers:
            tier.close()

    def __enter__(self) -> "TieredCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __contains__(self, key: str) -> bool:
        return key in self.tiers[-1]

    def __len__(self) -> int:
        return len(self.tiers[-1])


def backend_stats(cache: CacheBackend) -> dict[str, Any]:
    """A backend's ``stats()`` dict, or a minimal fallback for backends
    that predate the stats surface (entry count only — computing bytes
    generically would parse every payload)."""
    probe = getattr(cache, "stats", None)
    if probe is not None:
        return probe()
    return {"backend": type(cache).__name__, "entries": len(cache)}


def _open_http(url: str | Path) -> CacheBackend:
    # Imported here only to keep the module dependency one-way on paper
    # (remote is the layer above); the engine package __init__ loads
    # .remote eagerly anyway, so nothing is actually deferred.
    from .remote import HttpCache

    return HttpCache(str(url))


#: Constructors by CLI/backend name; the single source of truth for
#: ``--cache-backend`` choices. ``http`` interprets the path as the
#: cache server's base URL; ``memory`` ignores it (one process's RAM
#: has no path) and is unbounded — when the memory cache is the whole
#: store (``cache-serve --backend memory``), the hot-tier LRU default
#: would silently evict results mid-sweep. The ``tiered`` composite is
#: assembled explicitly (it needs a local path *and* a URL), not
#: through this table.
BACKENDS = {
    "dir": DirectoryCache,
    "sqlite": SqliteCache,
    "memory": lambda path=None: MemoryCache(max_entries=None),
    "http": _open_http,
}


def open_cache(path: str | Path, backend: str = "dir") -> CacheBackend:
    """Construct a cache backend by name (``dir``, ``sqlite``,
    ``memory``, or ``http`` — where ``path`` is the server URL)."""
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise InvalidParameterError(
            f"unknown cache backend {backend!r}; "
            f"available: {', '.join(sorted(BACKENDS))}"
        ) from None
    return factory(path)
